"""Property-based tests: sharded metric shards merge to the sequential
run's metrics.

The sharded explorer counts edges, branching and in-batch dedup inside
worker processes and merges the snapshot shards at the pool join; the
coordinator adds its own dedup decisions and frontier widths.  For any
completed exploration this decomposition must be exact: each enabled
step is counted exactly once -- as an accepted edge, a worker-side
in-batch duplicate, or a coordinator-side duplicate -- and frontier
bookkeeping replays the sequential order.  Hypothesis drives arbitrary
small table protocols through both engines (1 worker = the sequential
fast path, N workers = real shards) under separate registries and
demands equal counters and histograms.
"""

from hypothesis import HealthCheck, given, settings
import hypothesis.strategies as st

from repro.analysis.explorer import Explorer
from repro.model.system import System
from repro.obs import MetricsRegistry, observe
from repro.parallel import ShardedExplorer

from tests.test_parallel_differential import table_protocols

PROPERTY = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: The engine-independent instruments the equality argument covers.
COMPARED_COUNTERS = (
    "explorer.edges",
    "explorer.dedup_hits",
    "explorer.explorations",
    "explorer.visited",
)
COMPARED_HISTOGRAMS = ("explorer.branching", "explorer.frontier")


def explore_with_metrics(make_explorer, root, pids):
    registry = MetricsRegistry()
    with observe(metrics=registry):
        result = make_explorer().explore(root, pids)
    return result, registry.snapshot()


def assert_metrics_equal(seq_snap, par_snap):
    for name in COMPARED_COUNTERS:
        assert par_snap["counters"].get(name) == seq_snap["counters"].get(
            name
        ), name
    for name in COMPARED_HISTOGRAMS:
        seq_h = seq_snap["histograms"].get(name)
        par_h = par_snap["histograms"].get(name)
        assert (seq_h is None) == (par_h is None), name
        if seq_h is not None:
            assert par_h["counts"] == seq_h["counts"], name
            assert par_h["count"] == seq_h["count"], name
            assert par_h["sum"] == seq_h["sum"], name
    assert par_snap["gauges"].get("explorer.frontier_peak") == seq_snap[
        "gauges"
    ].get("explorer.frontier_peak")


@given(protocol=table_protocols(), inputs_seed=st.integers(0, 7))
@PROPERTY
def test_sharded_metrics_equal_sequential(
    protocol, inputs_seed, worker_pool, workers
):
    system = System(protocol)
    inputs = [(inputs_seed >> pid) & 1 for pid in range(protocol.n)]
    root = system.initial_configuration(inputs)
    pids = frozenset(range(protocol.n))

    _, seq_snap = explore_with_metrics(
        lambda: Explorer(system, max_configs=50_000), root, pids
    )
    _, par_snap = explore_with_metrics(
        lambda: ShardedExplorer(
            system, workers=workers, pool=worker_pool, max_configs=50_000
        ),
        root,
        pids,
    )
    assert_metrics_equal(seq_snap, par_snap)


@given(protocol=table_protocols(), inputs_seed=st.integers(0, 3))
@PROPERTY
def test_one_worker_metrics_equal_sequential(protocol, inputs_seed):
    system = System(protocol)
    inputs = [(inputs_seed >> pid) & 1 for pid in range(protocol.n)]
    root = system.initial_configuration(inputs)
    pids = frozenset(range(protocol.n))

    _, seq_snap = explore_with_metrics(
        lambda: Explorer(system, max_configs=50_000), root, pids
    )
    _, one_snap = explore_with_metrics(
        lambda: ShardedExplorer(system, workers=1, max_configs=50_000),
        root,
        pids,
    )
    assert one_snap == seq_snap


@given(protocol=table_protocols())
@PROPERTY
def test_metrics_are_deterministic_across_repeats(
    protocol, worker_pool, workers
):
    system = System(protocol)
    root = system.initial_configuration([0, 1] + [0] * (protocol.n - 2))
    pids = frozenset(range(protocol.n))

    def once():
        _, snap = explore_with_metrics(
            lambda: ShardedExplorer(
                system, workers=workers, pool=worker_pool, max_configs=50_000
            ),
            root,
            pids,
        )
        return snap

    assert once() == once()
