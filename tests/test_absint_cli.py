"""The ``repro absint`` CLI surface and the stats absint table.

Exit-code contract, same refinement as ``repro lint``: 0 every
certificate clean, 2 at least one protocol statically refuted, 1 the
analysis itself failed.  The stats table must render "n/a" rates (never
divide) for journals from runs that touched no analysis at all.
"""

import json

import pytest

from repro.cli import main
from repro.fuzz.zoo import Zoo
from repro.model.table import TableProtocol


def refuted_table():
    """Constant-decides 0: footprint-clean, absint validity-refuted."""
    return TableProtocol(
        name="biased", n=3, registers=2,
        initial={0: 0, 1: 1},
        rules={0: ("write", 0, 0), 1: ("write", 1, 1), 2: ("read", 0)},
        transitions={(0, None): 2, (1, None): 2},
        defaults={2: 3},
        decisions={3: 0},
    )


@pytest.fixture
def refuted_zoo(tmp_path):
    zoo = Zoo(tmp_path / "zoo")
    specimen, added = zoo.add(refuted_table(), {"origin": "test"})
    assert added
    return zoo, specimen


class TestExitCodes:
    def test_clean_protocols_exit_zero(self, capsys):
        assert main(["absint", "rounds:3", "tas:2"]) == 0
        out = capsys.readouterr().out
        assert "0 refuted" in out

    def test_refuted_zoo_specimen_exits_two(self, refuted_zoo, capsys):
        zoo, specimen = refuted_zoo
        assert main(["absint", "--zoo", str(zoo.root)]) == 2
        out = capsys.readouterr().out
        assert "1 refuted" in out
        assert "validity" in out

    def test_digest_selects_one_specimen(self, refuted_zoo, capsys):
        zoo, specimen = refuted_zoo
        code = main([
            "absint", "--zoo", str(zoo.root),
            "--digest", specimen.digest[:12],
        ])
        assert code == 2
        capsys.readouterr()

    def test_no_targets_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            main(["absint"])

    def test_bad_spec_is_a_usage_error(self):
        with pytest.raises(SystemExit, match="unknown protocol family"):
            main(["absint", "no-such-family:3"])


class TestJson:
    def test_json_is_machine_checkable(self, refuted_zoo, capsys):
        zoo, specimen = refuted_zoo
        main(["absint", "--zoo", str(zoo.root), "--json"])
        payload = json.loads(capsys.readouterr().out)
        [certificate] = payload
        assert certificate["version"] == 1
        assert certificate["representation"] == "table"
        kinds = {v["kind"] for v in certificate["verdicts"]}
        assert "validity" in kinds
        assert certificate["overall"]["writes"] == [0, 1]

    def test_json_byte_stable_across_runs(self, capsys):
        main(["absint", "tas:2", "--json"])
        first = capsys.readouterr().out
        main(["absint", "tas:2", "--json"])
        assert capsys.readouterr().out == first


class TestObservability:
    def test_trace_out_records_certificate_spans(self, tmp_path, capsys):
        journal = tmp_path / "absint.jsonl"
        main(["absint", "tas:2", "--trace-out", str(journal)])
        capsys.readouterr()
        names = {
            json.loads(line).get("name")
            for line in journal.read_text().splitlines()
        }
        assert "absint.certificate" in names

    def test_stats_renders_absint_table(self, tmp_path, capsys):
        journal = tmp_path / "absint.jsonl"
        main(["absint", "tas:2", "--trace-out", str(journal)])
        capsys.readouterr()
        assert main(["stats", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "absint" in out
        assert "static certificates" in out

    def test_stats_absint_table_na_on_empty_journal(self, tmp_path, capsys):
        journal = tmp_path / "idle.jsonl"
        record = {
            "v": 1, "t": 0.0, "run": "idle", "type": "metrics",
            "name": "metrics",
            "data": {"counters": {}, "gauges": {}, "histograms": {}},
        }
        journal.write_text(json.dumps(record) + "\n", "utf-8")
        assert main(["stats", str(journal)]) == 0
        out = capsys.readouterr().out
        line = next(
            l for l in out.splitlines() if l.startswith("refutation rate")
        )
        assert line.rstrip().endswith("n/a"), line
        line = next(
            l for l in out.splitlines() if l.startswith("fixpoint analyses")
        )
        assert line.rstrip().endswith("0"), line


class TestInjectFlag:
    def test_absint_unsound_is_an_accepted_choice(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["fuzz", "run", "--inject", "absint-unsound"]
        )
        assert args.inject == "absint-unsound"
