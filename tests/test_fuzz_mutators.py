"""Property tests for the structure-aware mutators (satellite S2).

Every mutant must be a first-class specimen: constructible (the mutator
contract), picklable by constructor recipe, lintable without crashing,
and byte-identical through a zoo serialization round trip.  The drivers
below walk a few hundred seeded (generator, mutator) pairs -- plain
``random.Random`` streams, so a failure is a deterministic repro, never
a flake.
"""

import pickle
import random

import pytest

from repro.fuzz.generator import (
    MUTATORS,
    GeneratorConfig,
    generate_protocol,
    mutate_protocol,
)
from repro.fuzz.zoo import (
    protocol_from_dict,
    protocol_to_dict,
    specimen_digest,
)
from repro.lint import lint_protocol
from repro.model.table import TableProtocol

CONFIG = GeneratorConfig(n=(2, 3), states=(2, 7), registers=(1, 3))

SEEDS = range(40)


def _mutants(seed):
    """One generated parent and one mutant per mutator, deterministically."""
    rng = random.Random(seed)
    parent = generate_protocol(rng, CONFIG, name=f"prop-{seed}")
    out = [parent]
    for mutator in MUTATORS:
        out.append(mutator(rng, parent))
    out.append(mutate_protocol(rng, parent, rounds=3))
    return out


@pytest.mark.parametrize("seed", SEEDS)
def test_mutants_construct_and_stay_well_formed(seed):
    for mutant in _mutants(seed):
        assert isinstance(mutant, TableProtocol)
        # Constructing through the public ctor validated every rule
        # against its register's resolved kind; re-assert the invariant.
        for state, rule in mutant.rules.items():
            assert mutant.poised(0, state) is not None or (
                state in mutant.decisions
            )


@pytest.mark.parametrize("seed", SEEDS)
def test_mutants_pickle_by_ctor_recipe(seed):
    for mutant in _mutants(seed):
        clone = pickle.loads(pickle.dumps(mutant))
        assert clone.rules == mutant.rules
        assert clone.transitions == mutant.transitions
        assert clone.decisions == mutant.decisions
        assert clone.register_kinds == mutant.register_kinds
        assert specimen_digest(clone) == specimen_digest(mutant)


@pytest.mark.parametrize("seed", SEEDS)
def test_mutants_lint_without_crashing(seed):
    for mutant in _mutants(seed):
        report = lint_protocol(mutant)
        # Any diagnostics are fine -- mutants are often deliberately
        # broken protocols -- but the lint pass itself must not raise.
        assert report is not None


@pytest.mark.parametrize("seed", SEEDS)
def test_zoo_serialization_round_trips_byte_identically(seed):
    for mutant in _mutants(seed):
        recipe = protocol_to_dict(mutant)
        rebuilt = protocol_from_dict(recipe)
        assert protocol_to_dict(rebuilt) == recipe
        assert specimen_digest(rebuilt) == specimen_digest(mutant)


def test_mutators_never_mutate_their_input():
    rng = random.Random(1234)
    parent = generate_protocol(rng, CONFIG, name="frozen")
    before = protocol_to_dict(parent)
    for mutator in MUTATORS:
        mutator(random.Random(99), parent)
    assert protocol_to_dict(parent) == before


def test_mutation_is_deterministic_for_fixed_seed():
    parent = generate_protocol(random.Random(5), CONFIG, name="det")
    a = mutate_protocol(random.Random(77), parent, rounds=4)
    b = mutate_protocol(random.Random(77), parent, rounds=4)
    assert specimen_digest(a) == specimen_digest(b)


def test_mutant_rename_marks_derivation():
    parent = generate_protocol(random.Random(5), CONFIG, name="det")
    mutant = mutate_protocol(random.Random(77), parent)
    assert mutant.name != parent.name
