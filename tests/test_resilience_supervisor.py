"""The supervised pool must survive what ``Pool.map`` cannot.

Every test here injects a runtime fault -- a worker killed before or
after computing, a wedged worker, a poison task, a pool with no workers
left -- and asserts the map contract still holds: results in task order,
errors with their types and payloads intact, and (for the explorer
integration) exploration results bit-identical to the undisturbed
sequential run.  Task functions are module-level so spawn children can
import them.
"""

import math
import multiprocessing
import time

import pytest

from repro.errors import ExplorationLimitError
from repro.analysis.explorer import Explorer
from repro.faults.chaos import ChaosPlan, seeded_kill_plan
from repro.model.system import System
from repro.obs import MetricsRegistry, observe
from repro.parallel import ShardedExplorer, WorkerPool
from repro.protocols.consensus import CommitAdoptRounds
from repro.resilience import KILL_EXIT_CODE, SupervisedPool

BOUNDED = dict(max_configs=20_000, max_depth=12, strict=False)


def result_tuple(result):
    return (
        dict(result.decided),
        result.visited,
        result.complete,
        result.truncated,
    )


# -- spawn-picklable task functions ------------------------------------------


def square(x):
    return x * x


def slow_square(x):
    time.sleep(0.05)
    return x * x


def sqrt_or_raise(x):
    return math.sqrt(x)


def raise_limit(x):
    raise ExplorationLimitError(f"limit at {x}", visited=x)


# -- map contract under faults -----------------------------------------------


class TestSupervisedMap:
    def test_results_in_task_order(self):
        with SupervisedPool(2) as pool:
            assert pool.map(square, range(20)) == [i * i for i in range(20)]

    def test_empty_and_reuse(self):
        with SupervisedPool(2) as pool:
            assert pool.map(square, []) == []
            assert pool.map(square, [3]) == [9]
            assert pool.map(square, [4, 5]) == [16, 25]

    def test_error_type_and_payload_preserved(self):
        with SupervisedPool(2) as pool:
            with pytest.raises(ValueError):
                pool.map(sqrt_or_raise, [4.0, -1.0])
            with pytest.raises(ExplorationLimitError) as excinfo:
                pool.map(raise_limit, [7])
            assert excinfo.value.visited == 7
            # The pool survives a raised task and keeps serving.
            assert pool.map(square, [6]) == [36]

    @pytest.mark.parametrize("mode", ["kill-before", "kill-after"])
    def test_killed_worker_task_retried(self, mode):
        registry = MetricsRegistry()
        plan = ChaosPlan(kills={0: mode})
        with observe(metrics=registry):
            with SupervisedPool(2, chaos=plan) as pool:
                assert pool.map(square, range(8)) == [
                    i * i for i in range(8)
                ]
        counters = registry.snapshot()["counters"]
        assert counters["supervisor.worker_restarts"] >= 1
        assert counters["supervisor.tasks_retried"] >= 1
        assert plan.fired and plan.fired[0][2] == mode

    def test_seeded_kill_plan_is_reproducible(self):
        first = seeded_kill_plan(seed=5, kills=2, horizon=8)
        second = seeded_kill_plan(seed=5, kills=2, horizon=8)
        assert first.kills == second.kills
        with pytest.raises(ValueError):
            seeded_kill_plan(seed=0, kills=9, horizon=8)
        with pytest.raises(ValueError):
            seeded_kill_plan(seed=0, mode="segfault")

    def test_poison_task_quarantined_in_process(self):
        registry = MetricsRegistry()
        plan = ChaosPlan(poison={0})
        with observe(metrics=registry):
            with SupervisedPool(2, chaos=plan, max_retries=1) as pool:
                assert pool.map(square, range(6)) == [
                    i * i for i in range(6)
                ]
        counters = registry.snapshot()["counters"]
        assert counters["supervisor.tasks_quarantined"] >= 1
        # Every poison dispatch killed its worker with the chaos code.
        assert all(
            directive == "kill-after" for _, _, directive in plan.fired
        )

    def test_wedged_worker_killed_by_deadline(self):
        registry = MetricsRegistry()
        plan = ChaosPlan(hangs={0})
        with observe(metrics=registry):
            with SupervisedPool(
                2, chaos=plan, task_timeout=0.3, poll_interval=0.02
            ) as pool:
                assert pool.map(square, range(6)) == [
                    i * i for i in range(6)
                ]
        counters = registry.snapshot()["counters"]
        assert counters["supervisor.worker_restarts"] >= 1

    def test_degrades_to_sequential_when_respawns_exhausted(self):
        registry = MetricsRegistry()
        # One worker, no respawn budget: the first kill empties the pool.
        plan = ChaosPlan(kills={0: "kill-after"})
        with observe(metrics=registry):
            with SupervisedPool(1, chaos=plan, max_respawns=0) as pool:
                assert pool.map(square, range(5)) == [
                    i * i for i in range(5)
                ]
                assert pool.degraded
                # Degraded pools keep honouring the map contract.
                assert pool.map(square, [9]) == [81]
        counters = registry.snapshot()["counters"]
        assert counters["supervisor.degraded_to_sequential"] == 1

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            SupervisedPool(0)

    def test_kill_exit_code_is_distinctive(self):
        # The chaos exit code must not collide with clean exit (0) or
        # the CLI contract codes (1/2/3).
        assert KILL_EXIT_CODE not in (0, 1, 2, 3)


# -- graceful close: the S1 regression ---------------------------------------


class TestGracefulClose:
    # The tier-1 suite shares a session-scoped WorkerPool (conftest),
    # so "no zombies" means "no children beyond the ones alive before
    # this test's pool existed", not a globally empty children list.
    def _baseline(self):
        return {child.pid for child in multiprocessing.active_children()}

    def _assert_no_new_children(self, baseline):
        deadline = time.monotonic() + 5.0
        while True:
            leaked = [
                child
                for child in multiprocessing.active_children()
                if child.pid not in baseline
            ]
            if not leaked:
                return
            if time.monotonic() > deadline:
                raise AssertionError(f"zombie workers: {leaked}")
            time.sleep(0.02)

    def test_supervised_close_leaves_no_zombies(self):
        baseline = self._baseline()
        pool = WorkerPool(2)
        system = System(CommitAdoptRounds(3))
        root = system.initial_configuration([0, 1, 0])
        ShardedExplorer(system, workers=2, pool=pool, **BOUNDED).explore(
            root, frozenset({0, 1, 2})
        )
        pool.close()
        self._assert_no_new_children(baseline)

    def test_legacy_close_joins_before_terminate(self):
        baseline = self._baseline()
        pool = WorkerPool(2, supervise=False)
        system = System(CommitAdoptRounds(3))
        root = system.initial_configuration([0, 1, 0])
        ShardedExplorer(system, workers=2, pool=pool, **BOUNDED).explore(
            root, frozenset({0, 1, 2})
        )
        pool.close()
        self._assert_no_new_children(baseline)

    def test_close_idempotent_and_unstarted(self):
        baseline = self._baseline()
        pool = WorkerPool(2)
        pool.close()
        pool.close()
        with SupervisedPool(2) as supervised:
            supervised.map(square, [1])
        supervised.close()  # second close is a no-op
        self._assert_no_new_children(baseline)


# -- explorer integration: chaos must not change results ---------------------


class TestShardedUnderChaos:
    def test_exploration_identical_under_kills(self, workers):
        system = System(CommitAdoptRounds(3))
        root = system.initial_configuration([0, 1, 0])
        pids = frozenset({0, 1, 2})
        seq = Explorer(system, **BOUNDED).explore(root, pids)
        plan = seeded_kill_plan(seed=1, kills=2, horizon=12)
        with WorkerPool(workers, chaos=plan) as pool:
            par = ShardedExplorer(
                system, workers=workers, pool=pool, **BOUNDED
            ).explore(root, pids)
        assert result_tuple(seq) == result_tuple(par)
        assert par.witnesses_replay(System(CommitAdoptRounds(3)))

    def test_exploration_identical_when_degraded(self, workers):
        system = System(CommitAdoptRounds(3))
        root = system.initial_configuration([0, 1, 0])
        pids = frozenset({0, 1, 2})
        seq = Explorer(system, **BOUNDED).explore(root, pids)
        plan = ChaosPlan(kills={0: "kill-before", 1: "kill-before"})
        with WorkerPool(2, chaos=plan) as pool:
            pool._ensure()
            pool._pool.max_respawns = 0
            par = ShardedExplorer(
                system, workers=2, pool=pool, **BOUNDED
            ).explore(root, pids)
            assert pool.degraded
        assert result_tuple(seq) == result_tuple(par)
