"""Packed configuration codec: round trips, fingerprints, hash equality.

The codec's contract is *injectivity up to configuration equality*:
``pack`` maps ``==``-equal configurations to the same row, distinct
configurations to distinct rows, and ``unpack(pack(c)) == c``.  The u64
structural fingerprint must be a pure function of the row bytes --
stable across process boundaries (no ``PYTHONHASHSEED`` dependence) and
across spill/reload, because the out-of-core store indexes spilled
segments by it.
"""

import os
import subprocess
import sys
from pathlib import Path

from hypothesis import given
import hypothesis.strategies as st

import pytest

from repro.errors import KernelError
from repro.kernel import PackedCodec, row_fingerprint
from repro.kernel.codec import FIELD_MASK, fnv1a64
from repro.model.configuration import Configuration
from repro.model.system import System

from tests.test_parallel_differential import table_protocols

SRC = str(Path(__file__).resolve().parent.parent / "src")


def make_codec(n=2, registers=2, track_coins=False):
    return PackedCodec(n, registers, track_coins=track_coins)


class TestRoundTrip:
    def test_pack_unpack_identity_on_reachable_graph(self):
        """Every configuration the explorer can reach round-trips."""
        from repro.analysis.explorer import Explorer
        from repro.protocols.consensus import CommitAdoptRounds

        system = System(CommitAdoptRounds(2))
        explorer = Explorer(system, max_configs=5_000, strict=False)
        root = system.initial_configuration([0, 1])
        codec = PackedCodec(
            2, system.protocol.num_objects, track_coins=True
        )
        seen = 0
        for config, _schedule in explorer.iter_reachable(
            root, frozenset({0, 1})
        ):
            row = codec.pack(config)
            again = codec.unpack(row)
            assert again == config
            assert hash(again) == hash(config)
            assert codec.pack(again) == row
            seen += 1
            if seen >= 200:
                break
        assert seen > 0

    @given(protocol=table_protocols(), inputs_seed=st.integers(0, 7))
    def test_pack_unpack_identity_on_generated_protocols(
        self, protocol, inputs_seed
    ):
        system = System(protocol)
        inputs = [(inputs_seed >> pid) & 1 for pid in range(protocol.n)]
        config = system.initial_configuration(inputs)
        codec = PackedCodec(
            protocol.n, protocol.num_objects, track_coins=False
        )
        assert codec.unpack(codec.pack(config)) == config

    def test_row_bytes_round_trip(self):
        codec = make_codec()
        config = Configuration(
            states=(1, 2), memory=(0, 1), coins=(0, 0)
        )
        row = codec.pack(config)
        data = codec.row_bytes(row)
        assert len(data) == codec.width_bytes
        assert codec.row_from_bytes(data) == row

    def test_equal_configurations_pack_identically(self):
        """Satellite-6 regression: values equal under ``==`` (True/1,
        0/False) must intern to the same field id, exactly as
        ``Configuration`` equality treats them -- the packed row and the
        object configuration can never disagree about duplicates."""
        codec = make_codec()
        a = Configuration(
            states=(True, 0), memory=(False, 1), coins=(0, 0)
        )
        b = Configuration(states=(1, 0), memory=(0, 1), coins=(0, 0))
        assert a == b
        assert codec.pack(a) == codec.pack(b)
        assert codec.unpack(codec.pack(a)) == b

    def test_distinct_configurations_pack_distinctly(self):
        codec = make_codec()
        rows = set()
        for s0 in (0, 1, 2):
            for m0 in (0, 1):
                rows.add(
                    codec.pack(
                        Configuration(
                            states=(s0, 0), memory=(m0, 0), coins=(0, 0)
                        )
                    )
                )
        assert len(rows) == 6


class TestErrors:
    def test_coins_without_tracking_raise(self):
        codec = make_codec(track_coins=False)
        config = Configuration(states=(0, 0), memory=(0, 0), coins=(1, 0))
        with pytest.raises(KernelError):
            codec.pack(config)

    def test_coin_counter_overflow_raises(self):
        codec = make_codec(track_coins=True)
        config = Configuration(
            states=(0, 0), memory=(0, 0), coins=(FIELD_MASK + 1, 0)
        )
        with pytest.raises(KernelError):
            codec.pack(config)


class TestFingerprint:
    def test_fingerprint_is_pure_function_of_row(self):
        codec = make_codec()
        config = Configuration(
            states=(2, 1), memory=(1, 0), coins=(0, 0)
        )
        row = codec.pack(config)
        assert codec.fingerprint(row) == row_fingerprint(
            row, codec.width_bytes
        )
        assert codec.fingerprint(row) == fnv1a64(codec.row_bytes(row))

    def test_fingerprint_stable_across_process_boundary(self):
        """Spilled segments are fingerprint-indexed; a hash-seed
        dependence would corrupt every reload.  Recompute in a child
        interpreter with a different PYTHONHASHSEED."""
        rows = [0, 1, (1 << 32) | 7, (1 << 96) + 12345]
        width = 16
        expected = [row_fingerprint(row, width) for row in rows]
        script = (
            "from repro.kernel import row_fingerprint\n"
            f"print([row_fingerprint(r, {width}) for r in {rows!r}])\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = "12345"
        out = subprocess.run(
            [sys.executable, "-c", script],
            env=env, capture_output=True, text=True, check=True,
        )
        assert eval(out.stdout.strip()) == expected
