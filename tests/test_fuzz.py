"""Property-based schedule fuzzing (hypothesis) of the protocol suite.

For arbitrary schedules and inputs: agreement and validity hold at every
point, and solo completion decides everyone.  These are the invariants
the theorems assume; hypothesis hunts for interleavings the hand-written
tests did not think of.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.model.system import System, tape_from_bits
from repro.mutex import PetersonFilter, TournamentMutex
from repro.protocols.consensus import (
    CommitAdoptRounds,
    KSetPartition,
    RacingCounters,
    RandomizedRounds,
)

FUZZ = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def run_to_completion(system, inputs, schedule, solo_bound=50_000):
    config = system.initial_configuration(list(inputs))
    config, _ = system.run(config, schedule, skip_halted=True)
    for pid in range(system.protocol.n):
        config, _ = system.solo_run(config, pid, solo_bound)
    return config


class TestConsensusFuzz:
    @given(
        inputs=st.tuples(*[st.integers(0, 1)] * 3),
        schedule=st.lists(st.integers(0, 2), max_size=120),
    )
    @FUZZ
    def test_rounds_agreement_validity(self, inputs, schedule):
        system = System(CommitAdoptRounds(3))
        config = run_to_completion(system, inputs, schedule)
        decided = system.decided_values(config)
        assert len(decided) == 1
        assert decided <= set(inputs)

    @given(
        inputs=st.tuples(*[st.integers(0, 1)] * 3),
        schedule=st.lists(st.integers(0, 2), max_size=100),
    )
    @FUZZ
    def test_racing_agreement_validity(self, inputs, schedule):
        system = System(RacingCounters(3))
        config = run_to_completion(system, inputs, schedule)
        decided = system.decided_values(config)
        assert len(decided) == 1
        assert decided <= set(inputs)

    @given(
        inputs=st.tuples(*[st.integers(0, 1)] * 3),
        schedule=st.lists(st.integers(0, 2), max_size=80),
        bits=st.lists(st.integers(0, 1), min_size=8, max_size=8),
    )
    @FUZZ
    def test_randomized_agreement_any_tape(self, inputs, schedule, bits):
        system = System(
            RandomizedRounds(3), tape=tape_from_bits([bits, bits, bits])
        )
        config = run_to_completion(system, inputs, schedule)
        decided = system.decided_values(config)
        assert len(decided) == 1
        assert decided <= set(inputs)

    @given(
        schedule=st.lists(st.integers(0, 3), max_size=120),
    )
    @FUZZ
    def test_kset_at_most_k_values(self, schedule):
        system = System(KSetPartition(4, 2))
        inputs = [10, 11, 12, 13]
        config = run_to_completion(system, inputs, schedule)
        decided = system.decided_values(config)
        assert 1 <= len(decided) <= 2
        assert decided <= set(inputs)


class TestMutexFuzz:
    @given(schedule=st.lists(st.integers(0, 2), max_size=250))
    @FUZZ
    def test_peterson_never_two_in_cs(self, schedule):
        protocol = PetersonFilter(3, sessions=1)
        system = System(protocol)
        config = system.initial_configuration([None] * 3)
        for pid in schedule:
            if not system.enabled(config, pid):
                continue
            config, _ = system.step(config, pid)
            assert len(protocol.processes_in_cs(config)) <= 1

    @given(schedule=st.lists(st.integers(0, 3), max_size=250))
    @FUZZ
    def test_tournament_never_two_in_cs(self, schedule):
        protocol = TournamentMutex(4, sessions=1)
        system = System(protocol)
        config = system.initial_configuration([None] * 4)
        for pid in schedule:
            if not system.enabled(config, pid):
                continue
            config, _ = system.step(config, pid)
            assert len(protocol.processes_in_cs(config)) <= 1
