"""Smoke tests: the fast example scripts run end to end."""

import importlib
import sys

import pytest

sys.path.insert(0, "examples")


def run_example(name, capsys):
    module = importlib.import_module(name)
    module.main()
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "certificate replay-validated" in out
        assert ">= 2 registers" in out

    def test_adversary_trace(self, capsys):
        out = run_example("adversary_trace", capsys)
        assert "distinct registers witnessed" in out
        assert "fresh register" in out

    def test_flp_forever(self, capsys):
        out = run_example("flp_forever", capsys)
        assert "both values" in out
        assert "obstruction-freedom" in out

    def test_mutex_cost(self, capsys):
        out = run_example("mutex_cost", capsys)
        assert "tournament" in out and "peterson" in out

    def test_all_examples_importable(self):
        for name in (
            "quickstart",
            "space_audit",
            "adversary_trace",
            "mutex_cost",
            "leader_election",
            "kset_agreement",
            "flp_forever",
        ):
            module = importlib.import_module(name)
            assert hasattr(module, "main")
