"""End-to-end tests of Lemma 4 and Theorem 1 (the paper's main result)."""

import pytest

from repro.errors import (
    AdversaryError,
    CertificateError,
    ViolationError,
)
from repro.core.certificate import SpaceBoundCertificate
from repro.core.construction import ConstructionStats, lemma4
from repro.core.covering import is_well_spread
from repro.core.theorem import space_lower_bound
from repro.core.valency import ValencyOracle
from repro.model.system import System
from repro.protocols.consensus import (
    CasConsensus,
    CommitAdoptRounds,
    SplitBrainConsensus,
)


def bounded_oracle(system, configs=30_000, depth=60):
    return ValencyOracle(
        system, max_configs=configs, max_depth=depth, strict=False
    )


class TestLemma4:
    def test_base_case_pair(self):
        system = System(CommitAdoptRounds(2))
        oracle = bounded_oracle(system)
        config = system.initial_configuration([0, 1])
        result = lemma4(system, oracle, config, frozenset({0, 1}))
        assert result.alpha == ()
        assert result.pair == frozenset({0, 1})

    def test_three_processes(self):
        system = System(CommitAdoptRounds(3))
        oracle = bounded_oracle(system)
        config = system.initial_configuration([0, 1, 0])
        stats = ConstructionStats()
        result = lemma4(
            system, oracle, config, frozenset({0, 1, 2}), stats=stats
        )
        assert len(result.pair) == 2
        final, _ = system.run(config, result.alpha)
        outsiders = frozenset({0, 1, 2}) - result.pair
        assert is_well_spread(system, final, outsiders)
        assert oracle.is_bivalent(final, result.pair)
        assert stats.lemma4_calls >= 2  # recursion happened

    def test_rejects_singleton(self):
        system = System(CommitAdoptRounds(2))
        oracle = bounded_oracle(system)
        config = system.initial_configuration([0, 1])
        with pytest.raises(AdversaryError):
            lemma4(system, oracle, config, frozenset({0}))


class TestTheorem1:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_round_protocol_pins_n_minus_1_registers(self, n):
        system = System(CommitAdoptRounds(n))
        cert = space_lower_bound(
            system, strict=False, max_configs=30_000, max_depth=60
        )
        assert cert.bound >= n - 1
        assert len(cert.registers) == n - 1
        cert.validate(system)  # replay-validates

    def test_certificate_summary_mentions_bound(self):
        system = System(CommitAdoptRounds(3))
        cert = space_lower_bound(
            system, strict=False, max_configs=30_000, max_depth=60
        )
        assert "n-1 = 2" in cert.summary()

    def test_certificate_tampering_detected(self):
        system = System(CommitAdoptRounds(3))
        cert = space_lower_bound(
            system, strict=False, max_configs=30_000, max_depth=60
        )
        tampered = SpaceBoundCertificate(
            protocol_name=cert.protocol_name,
            n=cert.n,
            inputs=cert.inputs,
            alpha=cert.alpha,
            phi=cert.phi,
            covering=dict(cert.covering),
            z=cert.z,
            zeta=cert.zeta[:-1] if cert.zeta else cert.zeta,
            fresh_register=(cert.fresh_register + 1) % 3,
            registers=frozenset(
                (reg + 1) % 3 for reg in cert.registers
            ),
        )
        with pytest.raises(CertificateError):
            tampered.validate(system)

    def test_covering_registers_distinct_and_fresh_outside(self):
        system = System(CommitAdoptRounds(4))
        cert = space_lower_bound(
            system, strict=False, max_configs=30_000, max_depth=60
        )
        covered = set(cert.covering.values())
        assert len(covered) == len(cert.covering) == 2
        assert cert.fresh_register not in covered

    def test_cas_protocol_not_certifiable(self):
        # Registers-only theorem: against CAS the covering construction
        # must fail (and must NOT produce a bogus certificate).
        system = System(CasConsensus(3))
        with pytest.raises((AdversaryError, ViolationError)):
            space_lower_bound(system)

    def test_broken_protocol_not_certifiable(self):
        system = System(SplitBrainConsensus(3))
        with pytest.raises((AdversaryError, ViolationError)):
            space_lower_bound(system)

    def test_n1_rejected(self):
        system = System(CommitAdoptRounds(1))
        with pytest.raises(AdversaryError):
            space_lower_bound(system)


class TestTwoProcessBaseCase:
    def test_write_free_solo_run_yields_violation(self):
        # A protocol whose p0 decides solo without writing: the theorem's
        # n=2 argument materialises the agreement violation.
        from repro.model.program import ProgramBuilder, ProgramProtocol
        from repro.model.registers import register

        builder = ProgramBuilder()
        builder.read(0, "seen")
        builder.decide(lambda e: e["v"] if e["seen"] is None else e["seen"])
        program = builder.build()
        protocol = ProgramProtocol(
            "read-only-decider",
            2,
            [register(None)],
            [program, program],
            lambda pid, value: {"v": value},
        )
        with pytest.raises(ViolationError) as info:
            space_lower_bound(System(protocol))
        assert info.value.witness is not None

    def test_tas_two_process_certifies_one_object(self):
        # For n=2 the certificate only needs one written object; the
        # TAS protocol's first solo write is its value register.
        from repro.protocols.consensus import TasConsensus

        cert = space_lower_bound(System(TasConsensus()))
        assert cert.bound == 1
