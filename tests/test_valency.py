"""Tests for the refined valency oracle (Definition 1, Propositions 1-2)."""

import pytest

from repro.errors import AdversaryError, ExplorationLimitError
from repro.core.valency import (
    Valence,
    ValencyOracle,
    initial_bivalent_configuration,
)
from repro.model.system import System
from repro.protocols.consensus import (
    CasConsensus,
    CommitAdoptRounds,
    SplitBrainConsensus,
    TasConsensus,
)


@pytest.fixture
def cas3():
    system = System(CasConsensus(3))
    return system, ValencyOracle(system)


class TestDefinition1:
    def test_initial_all_processes_bivalent(self, cas3):
        system, oracle = cas3
        config = system.initial_configuration([0, 1, 0])
        assert oracle.is_bivalent(config, frozenset({0, 1, 2}))

    def test_singleton_univalent_on_own_input(self, cas3):
        system, oracle = cas3
        config = system.initial_configuration([0, 1, 0])
        assert oracle.is_univalent(config, frozenset({0}), 0)
        assert oracle.is_univalent(config, frozenset({1}), 1)

    def test_after_winner_everything_univalent(self, cas3):
        system, oracle = cas3
        config = system.initial_configuration([0, 1, 0])
        config, _ = system.solo_run(config, 1, max_steps=10)  # p1 wins with 1
        for pids in [{0}, {2}, {0, 2}, {0, 1, 2}]:
            assert oracle.is_univalent(config, frozenset(pids), 1)

    def test_empty_set_rejected(self, cas3):
        system, oracle = cas3
        config = system.initial_configuration([0, 1, 0])
        with pytest.raises(ValueError):
            oracle.can_decide(config, frozenset(), 0)

    def test_witness_replays_to_decision(self, cas3):
        system, oracle = cas3
        config = system.initial_configuration([0, 1, 0])
        witness = oracle.witness(config, frozenset({1, 2}), 1)
        final, _ = system.run(config, witness)
        assert 1 in system.decided_values(final)

    def test_witness_for_undecidable_value_raises(self, cas3):
        system, oracle = cas3
        config = system.initial_configuration([0, 0, 0])
        with pytest.raises(AdversaryError):
            oracle.witness(config, frozenset({0}), 1)


class TestProposition1:
    """The four easy consequences of Definition 1."""

    def test_i_some_value_decidable(self, cas3):
        system, oracle = cas3
        config = system.initial_configuration([0, 1, 0])
        for pids in [{0}, {1}, {2}, {0, 1}, {0, 1, 2}]:
            assert oracle.some_decidable_value(config, frozenset(pids)) in (0, 1)

    def test_ii_supersets_inherit_decidability(self, cas3):
        system, oracle = cas3
        config = system.initial_configuration([0, 1, 0])
        for value in (0, 1):
            if oracle.can_decide(config, frozenset({1}), value):
                assert oracle.can_decide(config, frozenset({0, 1}), value)
                assert oracle.can_decide(config, frozenset({0, 1, 2}), value)

    def test_iii_subsets_of_univalent_sets_univalent(self, cas3):
        system, oracle = cas3
        config = system.initial_configuration([1, 1, 1])
        assert oracle.is_univalent(config, frozenset({0, 1, 2}), 1)
        for pids in [{0}, {1}, {0, 2}]:
            assert oracle.is_univalent(config, frozenset(pids), 1)

    def test_iv_after_decision_univalent(self, cas3):
        system, oracle = cas3
        config = system.initial_configuration([0, 1, 0])
        witness = oracle.witness(config, frozenset({0, 1, 2}), 0)
        final, _ = system.run(config, witness)
        assert oracle.is_univalent(final, frozenset({0, 1, 2}), 0)


class TestProposition2:
    @pytest.mark.parametrize(
        "protocol", [CasConsensus(2), CasConsensus(4), TasConsensus()]
    )
    def test_initial_bivalent_configuration(self, protocol):
        system = System(protocol)
        config, p0, p1 = initial_bivalent_configuration(system)
        oracle = ValencyOracle(system)
        assert oracle.is_univalent(config, frozenset({p0}), 0)
        assert oracle.is_univalent(config, frozenset({p1}), 1)
        assert oracle.is_bivalent(config, frozenset({p0, p1}))

    def test_works_on_round_protocol(self):
        system = System(CommitAdoptRounds(3))
        config, p0, p1 = initial_bivalent_configuration(system)
        assert (p0, p1) == (0, 1)


class TestValenceClassification:
    def test_valence_enum(self, cas3):
        system, oracle = cas3
        mixed = system.initial_configuration([0, 1, 0])
        assert oracle.valence(mixed, frozenset({0, 1})) is Valence.BIVALENT
        assert oracle.valence(mixed, frozenset({0})) is Valence.ZERO
        assert oracle.valence(mixed, frozenset({1})) is Valence.ONE

    def test_broken_protocol_shows_bivalence_after_decision(self):
        # Split-brain: p0 can decide 0 solo while p1 can still decide 1 --
        # the oracle exposes the agreement violation as lingering
        # bivalence after a decision.
        system = System(SplitBrainConsensus(2))
        oracle = ValencyOracle(system)
        config = system.initial_configuration([0, 1])
        config, _ = system.solo_run(config, 0, max_steps=10)
        assert system.decision(config, 0) == 0
        assert oracle.can_decide(config, frozenset({1}), 1)


class TestOracleMechanics:
    def test_memoisation_hits(self, cas3):
        system, oracle = cas3
        config = system.initial_configuration([0, 1, 0])
        oracle.can_decide(config, frozenset({0, 1}), 0)
        before = oracle.stats["cache_hits"]
        oracle.can_decide(config, frozenset({0, 1}), 0)
        assert oracle.stats["cache_hits"] == before + 1

    def test_strict_oracle_raises_on_budget(self):
        system = System(CommitAdoptRounds(3))
        oracle = ValencyOracle(
            system, values=(0, 1, 2), max_configs=50, strict=True
        )
        config = system.initial_configuration([0, 1, 0])
        with pytest.raises(ExplorationLimitError):
            # A genuinely negative query (value 2 is never decided) needs
            # exhausting the infinite reachable graph; the solo-probe
            # fast path cannot answer it and strict mode must raise.
            oracle.can_decide(config, frozenset({0, 1, 2}), 2)

    def test_solo_probe_answers_positives_without_bfs(self):
        system = System(CommitAdoptRounds(3))
        oracle = ValencyOracle(system, max_configs=50, strict=True)
        config = system.initial_configuration([0, 1, 0])
        # Both values are decidable via plain solo runs, so even a
        # 50-config budget suffices -- no ExplorationLimitError.
        assert oracle.is_bivalent(config, frozenset({0, 1, 2}))

    def test_bounded_oracle_answers_heuristically(self):
        system = System(CommitAdoptRounds(3))
        oracle = ValencyOracle(
            system, max_configs=5_000, max_depth=40, strict=False
        )
        config = system.initial_configuration([0, 1, 1])
        # Positive answers are exact even in bounded mode.
        assert oracle.can_decide(config, frozenset({0, 1, 2}), 0)
        assert oracle.can_decide(config, frozenset({0, 1, 2}), 1)
        # Solo sets are genuinely univalent; bounded mode finds that.
        assert oracle.is_univalent(config, frozenset({0}), 0)

    def test_bounded_negative_is_cached(self):
        system = System(CommitAdoptRounds(2))
        oracle = ValencyOracle(system, max_configs=30, max_depth=4, strict=False)
        config = system.initial_configuration([0, 1])
        assert not oracle.can_decide(config, frozenset({0}), 1)
        before = oracle.stats["cache_hits"]
        assert not oracle.can_decide(config, frozenset({0}), 1)
        assert oracle.stats["cache_hits"] == before + 1
