"""Every broken bundled protocol yields a replayable violation witness.

The contract (asserted per protocol in ``protocols/consensus/faulty.py``):
the guarded harness produces a :class:`ViolationError` whose witness
schedule, replayed from the initial configuration, reproduces the same
class of violation -- and the witness round-trips through the JSON
serializer and renders through the trace formatter.
"""

import pytest

from repro.errors import ViolationError
from repro.analysis.trace_format import format_decisions, format_trace
from repro.core.serialize import certificate_from_json, to_json
from repro.model.system import System
from repro.faults import find_violation, run_adversary_guarded
from repro.protocols.consensus import (
    OptimisticOneRegister,
    SplitBrainConsensus,
    shared_register_rounds,
)

#: name -> (protocol factory, inputs).  One entry per protocol exported
#: by protocols/consensus/faulty.py.
BROKEN = {
    "split-brain": (lambda: SplitBrainConsensus(2), [0, 1]),
    "optimistic": (lambda: OptimisticOneRegister(2), [0, 1]),
    "shared-rounds": (lambda: shared_register_rounds(3, 1), [0, 1, 1]),
}


def _replay(protocol, inputs, witness):
    system = System(protocol)
    config = system.initial_configuration(inputs)
    return system, *system.run(config, witness, skip_halted=True)


@pytest.mark.parametrize("name", sorted(BROKEN), ids=str)
class TestBrokenProtocolWitnesses:
    def test_violation_found_with_witness(self, name):
        make, inputs = BROKEN[name]
        violation = find_violation(System(make()), inputs)
        assert isinstance(violation, ViolationError)
        assert violation.witness is not None
        assert len(violation.witness) > 0

    def test_witness_replays_to_same_violation(self, name):
        make, inputs = BROKEN[name]
        violation = find_violation(System(make()), inputs)
        system, final, _ = _replay(make(), inputs, violation.witness)
        decided = system.decided_values(final)
        if "agreement" in str(violation):
            assert len(decided) > 1
        else:
            assert decided - set(inputs)

    def test_witness_survives_json_round_trip(self, name):
        make, inputs = BROKEN[name]
        violation = find_violation(System(make()), inputs)
        restored = certificate_from_json(to_json(violation))
        assert isinstance(restored, ViolationError)
        assert restored.witness == tuple(violation.witness)
        assert str(restored) == str(violation)
        # The restored witness still replays.
        system, final, _ = _replay(make(), inputs, restored.witness)
        assert (
            len(system.decided_values(final)) > 1
            or system.decided_values(final) - set(inputs)
        )

    def test_witness_renders_through_trace_format(self, name):
        make, inputs = BROKEN[name]
        protocol = make()
        violation = find_violation(System(protocol), inputs)
        system, final, trace = _replay(protocol, inputs, violation.witness)
        rendered = format_trace(trace, protocol.n)
        assert "step" in rendered
        # Every witness step shows up as a row in the timeline.
        assert len(rendered.splitlines()) == len(trace) + 2
        decisions = format_decisions(
            [system.decision(final, pid) for pid in range(protocol.n)]
        )
        assert decisions.startswith("decisions:")


class TestGuardedHarnessOnBroken:
    def test_guarded_adversary_reports_violation(self):
        # n=3: split-brain's single register is below the n-1 bound, so
        # the construction cannot succeed and the harness must surface a
        # concrete violation instead.
        outcome = run_adversary_guarded(System(SplitBrainConsensus(3)))
        assert outcome.status == "violation"
        assert outcome.violation.witness is not None
