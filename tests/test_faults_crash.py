"""Crash-fault scheduling: plans, schedule filtering, the crash checker."""

import pytest

from repro.model.schedule import drop_after
from repro.model.system import System
from repro.faults import (
    CrashPlan,
    all_crash_plans,
    check_consensus_crashes,
    crash_sets,
)
from repro.protocols.consensus import (
    CasConsensus,
    CommitAdoptRounds,
    RacingCounters,
    RandomizedRounds,
    SplitBrainConsensus,
    TasConsensus,
)

#: The correct bundled consensus protocols at n=3 (tas is 2-process by
#: construction).  The acceptance bar: each survives *every* explored
#: <= (n-1)-crash plan.
CORRECT_AT_3 = [
    CommitAdoptRounds(3),
    RacingCounters(3),
    RandomizedRounds(3),
    CasConsensus(3),
]


class TestDropAfter:
    def test_truncates_per_pid(self):
        schedule = (0, 1, 0, 1, 2, 0, 1)
        # p1 dies at global index 3: its steps at 3 and 6 vanish.
        assert drop_after(schedule, {1: 3}) == (0, 1, 0, 2, 0)

    def test_cutoff_zero_removes_all_steps(self):
        assert drop_after((0, 1, 0, 1), {0: 0}) == (1, 1)

    def test_no_cutoffs_is_identity(self):
        schedule = (2, 0, 1, 1, 0)
        assert drop_after(schedule, {}) == schedule


class TestCrashPlan:
    def test_apply_removes_post_crash_steps(self):
        plan = CrashPlan.at(2, [0])
        assert plan.apply((0, 1, 0, 1, 0)) == (0, 1, 1)
        assert plan.crashed == frozenset({0})
        assert plan.survivors(3) == (1, 2)

    def test_plans_are_hashable_values(self):
        assert CrashPlan.at(1, [0, 2]) == CrashPlan.at(1, [2, 0])
        assert len({CrashPlan.at(1, [0]), CrashPlan.at(1, [0])}) == 1

    def test_describe_names_pids_and_steps(self):
        assert "p0" in CrashPlan.at(4, [0]).describe()
        assert CrashPlan().describe() == "no crashes"

    def test_crash_sets_leave_a_survivor(self):
        subsets = list(crash_sets(3))
        # All non-empty subsets of {0,1,2} of size <= 2.
        assert len(subsets) == 6
        assert all(len(s) <= 2 for s in subsets)
        assert frozenset({0, 1, 2}) not in subsets

    def test_crash_sets_respect_f(self):
        assert all(len(s) == 1 for s in crash_sets(3, f=1))

    def test_all_crash_plans_enumerates_grid(self):
        plans = list(all_crash_plans(3, horizon=4, f=1))
        assert len(plans) == 4 * 3
        assert len(set(plans)) == len(plans)


class TestCrashChecker:
    @pytest.mark.parametrize(
        "protocol", CORRECT_AT_3, ids=lambda p: p.name
    )
    def test_correct_protocols_survive_all_crash_plans(self, protocol):
        system = System(protocol)
        inputs = [0] + [1] * (protocol.n - 1)
        result = check_consensus_crashes(
            system, inputs, max_configs=300, solo_bound=5_000
        )
        assert result.ok, result.first_violation()
        # Every reachable config was paired with every <= 2-crash subset.
        assert result.plans_checked == result.configs_visited * 6

    def test_tas_survives_crashes_at_two_processes(self):
        system = System(TasConsensus(2))
        result = check_consensus_crashes(system, [0, 1], max_configs=300)
        assert result.ok
        assert result.exhaustive

    def test_split_brain_fails_under_crash_quantification(self):
        system = System(SplitBrainConsensus(2))
        result = check_consensus_crashes(system, [0, 1], max_configs=300)
        assert not result.ok
        violation = result.first_violation()
        assert violation.kind in {"agreement", "crash-termination"}
        assert result.bad_plans, "the failing crash plan must be reported"
        # The violation detail names the plan it happened under.
        assert "[" in violation.detail

    def test_violation_schedule_replays(self):
        """The reported schedule re-runs to a config showing the damage."""
        system = System(SplitBrainConsensus(2))
        result = check_consensus_crashes(system, [0, 1], max_configs=300)
        violation = result.first_violation()
        assert violation.kind == "agreement"
        config = system.initial_configuration([0, 1])
        final, _ = system.run(config, violation.schedule, skip_halted=True)
        assert len(system.decided_values(final)) > 1

    def test_f_caps_the_plan_grid(self):
        system = System(CommitAdoptRounds(3))
        narrow = check_consensus_crashes(
            system, [0, 1, 1], f=1, max_configs=100
        )
        wide = check_consensus_crashes(system, [0, 1, 1], max_configs=100)
        assert narrow.ok and wide.ok
        assert narrow.plans_checked < wide.plans_checked

    def test_run_with_crashes_matches_plan_apply(self):
        protocol = CommitAdoptRounds(2)
        system = System(protocol)
        config = system.initial_configuration([0, 1])
        schedule = (0, 1, 0, 1, 0, 1, 0, 1)
        plan = CrashPlan.at(3, [1])
        via_helper, _ = system.run_with_crashes(config, schedule, plan)
        via_apply, _ = system.run(
            config, plan.apply(schedule), skip_halted=True
        )
        assert via_helper == via_apply
