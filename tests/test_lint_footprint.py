"""Register-footprint analysis: exactness, widening, and the static
Theorem 1 contrapositive (with its certificate cross-check)."""

from types import SimpleNamespace

import pytest

from repro.core.theorem import space_lower_bound
from repro.lint import (
    consensus_impossible,
    crosscheck_certificate,
    program_footprint,
    protocol_footprint,
    table_footprint,
)
from repro.model.program import ProgramBuilder, ProgramProtocol
from repro.model.registers import register
from repro.model.system import System
from repro.model.table import TableProtocol
from repro.protocols.consensus import (
    CommitAdoptRounds,
    SplitBrainConsensus,
    TasConsensus,
)


def _protocol(program, n=2, registers=3):
    return ProgramProtocol(
        name="under-test",
        n=n,
        specs=[register(None, name=f"r{i}") for i in range(registers)],
        programs=[program] * n,
        initial_env=lambda pid, value: {"v": value},
    )


class TestProgramFootprint:
    def test_constant_operands_are_exact(self):
        builder = ProgramBuilder()
        builder.write(0, 1)
        builder.read(2, "x")
        builder.decide(0)
        footprint = program_footprint(builder.build(), universe=3)
        assert footprint.exact
        assert footprint.writes == {0}
        assert footprint.reads == {2}
        assert footprint.writable_bound == 1

    def test_dynamic_register_widens_writes_to_universe(self):
        builder = ProgramBuilder()
        builder.write(lambda e: e["v"], 1)
        builder.decide(0)
        footprint = program_footprint(builder.build(), universe=3)
        assert footprint.widened_writes
        assert footprint.writes == {0, 1, 2}
        assert footprint.writable_bound == 3

    def test_out_of_range_constant_widens(self):
        builder = ProgramBuilder()
        builder.write(9, 1)
        builder.decide(0)
        footprint = program_footprint(builder.build(), universe=2)
        assert footprint.widened_writes
        assert footprint.writes == {0, 1}

    def test_dead_code_does_not_contribute(self):
        builder = ProgramBuilder()
        builder.write(0, 1)
        builder.decide(0)
        builder.write(2, 1)  # unreachable
        footprint = program_footprint(builder.build(), universe=3)
        assert footprint.writes == {0}

    def test_swap_and_rmw_count_as_writes(self):
        builder = ProgramBuilder()
        builder.swap(0, 1, "a")
        builder.test_and_set(1, "b")
        builder.compare_and_swap(2, None, 1, "c")
        builder.decide(0)
        footprint = program_footprint(builder.build(), universe=3)
        assert footprint.writes == {0, 1, 2}
        assert footprint.reads == frozenset()


class TestTableAndDispatch:
    def test_table_footprint_is_exact_and_skips_dead_states(self):
        protocol = TableProtocol(
            n=2,
            registers=2,
            initial={0: 0, 1: 0},
            rules={0: ("write", 0, 1), 5: ("write", 1, 1)},
            transitions={},
            defaults={0: 1, 5: 5},
            decisions={1: 0},
        )
        footprint = table_footprint(protocol)
        assert footprint.exact
        assert footprint.writes == {0}  # state 5 is unreachable

    def test_protocol_footprint_merges_per_process_programs(self):
        footprint = protocol_footprint(TasConsensus(2))
        assert footprint.writes  # the two value registers + the T&S bit
        assert footprint.writable_bound >= 1

    def test_unknown_protocol_shape_widens_to_top(self):
        stub = SimpleNamespace(n=3, num_objects=4)
        footprint = protocol_footprint(stub)
        assert footprint.writes == {0, 1, 2, 3}
        assert not footprint.exact

    def test_footprint_union_rejects_mixed_universes(self):
        a = program_footprint(ProgramBuilder().decide(0).build(), universe=2)
        b = program_footprint(ProgramBuilder().decide(0).build(), universe=3)
        with pytest.raises(ValueError):
            a.union(b)


class TestTheoremContrapositive:
    def test_split_brain_cannot_solve_consensus(self):
        message = consensus_impossible(SplitBrainConsensus(4))
        assert message is not None
        assert "n-1 = 3" in message

    def test_correct_protocols_pass_the_bound(self):
        assert consensus_impossible(CommitAdoptRounds(3)) is None
        assert consensus_impossible(TasConsensus(2)) is None

    def test_two_process_one_register_is_not_flagged(self):
        # n-1 = 1 writable register is satisfiable with one register;
        # the static check must not over-claim.
        assert consensus_impossible(SplitBrainConsensus(2)) is None


class TestCertificateCrosscheck:
    def test_real_certificate_is_consistent_with_static_bound(self):
        protocol = CommitAdoptRounds(2)
        certificate = space_lower_bound(System(protocol))
        report = crosscheck_certificate(protocol, certificate)
        assert len(report) == 0

    def test_underapproximation_is_reported(self):
        fake = SimpleNamespace(registers=frozenset({0, 1, 2}), bound=3)
        report = crosscheck_certificate(SplitBrainConsensus(4), fake)
        [diag] = report.by_code("certificate-footprint-mismatch")
        assert diag.severity == "error"
