"""Tests for the mutual exclusion suite: algorithms, checkers, cost model."""

import pytest

from repro.model.system import System
from repro.mutex import (
    BakeryMutex,
    CostMeter,
    PetersonFilter,
    TournamentMutex,
    check_mutex_random,
    check_mutual_exclusion_exhaustive,
    contended_canonical_run,
    sequential_canonical_run,
)
from repro.mutex.visibility import schedule_to_trace, visibility_graph

ALGORITHMS = [PetersonFilter, TournamentMutex, BakeryMutex]


class TestMutualExclusion:
    @pytest.mark.parametrize("make", ALGORITHMS)
    def test_exhaustive_two_processes(self, make):
        system = System(make(2, sessions=1))
        result = check_mutual_exclusion_exhaustive(system)
        assert result.ok, result.first_violation()
        assert result.exhaustive

    @pytest.mark.parametrize("make", [PetersonFilter, TournamentMutex])
    def test_exhaustive_three_processes(self, make):
        system = System(make(3, sessions=1))
        result = check_mutual_exclusion_exhaustive(system, max_configs=800_000)
        assert result.ok, result.first_violation()

    @pytest.mark.parametrize("make", ALGORITHMS)
    def test_random_medium(self, make):
        system = System(make(5, sessions=2))
        result = check_mutex_random(system, runs=10, schedule_length=1_500)
        assert result.ok, result.first_violation()

    def test_too_few_processes_rejected(self):
        for make in ALGORITHMS:
            with pytest.raises(ValueError):
                make(1)


class TestCanonicalRuns:
    @pytest.mark.parametrize("make", ALGORITHMS)
    def test_sequential_realises_permutation(self, make):
        system = System(make(4, sessions=1))
        run = sequential_canonical_run(system, [2, 0, 3, 1])
        assert run.cs_order == (2, 0, 3, 1)
        assert run.cost > 0

    @pytest.mark.parametrize("make", ALGORITHMS)
    def test_contended_run_completes_all_sessions(self, make):
        system = System(make(4, sessions=1))
        run = contended_canonical_run(system)
        assert sorted(run.cs_order) == [0, 1, 2, 3]

    def test_contended_gating_respects_feasible_permutation(self):
        system = System(PetersonFilter(3, sessions=1))
        run = contended_canonical_run(system, permutation=[1, 2, 0])
        assert sorted(run.cs_order) == [0, 1, 2]

    def test_sequential_runs_are_spin_free(self):
        system = System(TournamentMutex(4, sessions=1))
        run = sequential_canonical_run(system, [0, 1, 2, 3])
        # Spin-free: every shared-memory step is charged.
        shared_steps = run.steps - 2 * 4  # minus the enter/exit markers
        assert run.cost == shared_steps

    def test_costs_scale_as_expected(self):
        # Tournament should be far cheaper than Peterson for larger n.
        n = 16
        peterson = sequential_canonical_run(
            System(PetersonFilter(n, sessions=1)), list(range(n))
        )
        tournament = sequential_canonical_run(
            System(TournamentMutex(n, sessions=1)), list(range(n))
        )
        assert tournament.cost < peterson.cost / 4


class TestCostMeter:
    def test_spinning_is_free_after_first_lap(self):
        system = System(PetersonFilter(2, sessions=1))
        config = system.initial_configuration([None, None])
        meter = CostMeter()
        # p0 through its doorway, then p1 through its doorway; p1 then
        # spins (p0 is at the level-0 gate with priority).
        for _ in range(4):
            config, step = system.step(config, 0)
            meter.observe(0, config.states[0], step)
        cost_before_spin = None
        for i in range(120):
            config, step = system.step(config, 1)
            meter.observe(1, config.states[1], step)
            if i == 60:
                cost_before_spin = meter.per_process[1]
        assert meter.per_process[1] == cost_before_spin  # steady spin: free

    def test_markers_never_charged(self):
        system = System(TournamentMutex(2, sessions=1))
        run = sequential_canonical_run(system, [0, 1])
        marker_steps = 4  # 2 processes x (enter + exit)
        assert run.cost <= run.steps - marker_steps


class TestVisibility:
    def test_sequential_run_has_total_visibility_chain(self):
        system = System(TournamentMutex(4, sessions=1))
        run = sequential_canonical_run(system, [3, 1, 0, 2])
        trace = schedule_to_trace(system, run.schedule)
        graph = visibility_graph(trace, 4)
        assert graph.every_pair_ordered()
        assert graph.chain() == (3, 1, 0, 2)
        # A total order has n(n-1)/2 edges.
        assert graph.edge_count() == 6

    def test_contended_run_still_ordered(self):
        system = System(PetersonFilter(3, sessions=1))
        run = contended_canonical_run(system)
        trace = schedule_to_trace(system, run.schedule)
        graph = visibility_graph(trace, 3)
        assert graph.every_pair_ordered()
        assert graph.chain() == run.cs_order

    def test_non_canonical_trace_rejected(self):
        from repro.errors import ModelError

        system = System(PetersonFilter(2, sessions=1))
        config = system.initial_configuration([None, None])
        _, trace = system.run(config, [0] * 3)
        with pytest.raises(ModelError):
            visibility_graph(trace, 2)
