"""Differential proof-by-test that partial-order reduction changes
nothing observable.

``por=True`` may only skip *work* (step and canonical-key computations),
never results: parents maps, witnesses, visited counts, decision sets,
truncation flags must be bit-identical across sequential/unpruned,
sequential/POR and sharded/POR on arbitrary hypothesis-generated
automata, and the adversary must emit byte-identical certificates.
"""

from hypothesis import given
import hypothesis.strategies as st

from repro.analysis.explorer import Explorer
from repro.core.serialize import to_json
from repro.core.theorem import space_lower_bound
from repro.core.valency import ValencyOracle
from repro.model.system import System
from repro.obs import MetricsRegistry, observe
from repro.parallel import ShardedExplorer
from repro.protocols.consensus import CommitAdoptRounds, TasConsensus

from tests.test_parallel_differential import (
    DIFFERENTIAL,
    fresh_system,
    table_protocols,
)


def _explore(explorer, system, inputs_seed, protocol, stop_when=None):
    inputs = [(inputs_seed >> pid) & 1 for pid in range(protocol.n)]
    root = system.initial_configuration(inputs)
    return explorer.explore(
        root, frozenset(range(protocol.n)), stop_when=stop_when
    )


@given(protocol=table_protocols(), inputs_seed=st.integers(0, 7))
@DIFFERENTIAL
def test_sequential_por_is_bit_identical(protocol, inputs_seed):
    system = System(protocol)
    base = _explore(
        Explorer(system, max_configs=50_000), system, inputs_seed, protocol
    )
    por = _explore(
        Explorer(system, max_configs=50_000, por=True),
        system, inputs_seed, protocol,
    )
    assert por.decided == base.decided  # values AND witness schedules
    assert por.visited == base.visited
    assert por.complete == base.complete
    assert por.truncated == base.truncated
    assert por.witnesses_replay(fresh_system(protocol))


@given(protocol=table_protocols(), inputs_seed=st.integers(0, 7))
@DIFFERENTIAL
def test_sharded_por_is_bit_identical(
    protocol, inputs_seed, worker_pool, workers
):
    system = System(protocol)
    base = _explore(
        Explorer(system, max_configs=50_000), system, inputs_seed, protocol
    )
    shard = _explore(
        ShardedExplorer(
            system, workers=workers, pool=worker_pool,
            max_configs=50_000, por=True,
        ),
        system, inputs_seed, protocol,
    )
    assert shard.decided == base.decided
    assert shard.visited == base.visited
    assert shard.complete == base.complete
    assert shard.truncated == base.truncated


@given(protocol=table_protocols(), value=st.sampled_from((0, 1)))
@DIFFERENTIAL
def test_por_early_exit_is_bit_identical(protocol, value):
    """stop_when fires at the same logical point with pruning on."""
    system = System(protocol)
    target = frozenset({value})
    base = _explore(
        Explorer(system, max_configs=50_000), system, 1, protocol,
        stop_when=target,
    )
    por = _explore(
        Explorer(system, max_configs=50_000, por=True), system, 1, protocol,
        stop_when=target,
    )
    assert por.decided == base.decided
    assert por.visited == base.visited


def test_pruned_plus_stepped_edges_equals_unpruned_edges():
    """POR accounting is conservation-of-edges: every edge the baseline
    steps is either stepped or counted as pruned under POR."""
    system = System(CommitAdoptRounds(2))
    root = system.initial_configuration([0, 1])
    pids = frozenset(range(2))

    def edges(por):
        registry = MetricsRegistry()
        with observe(metrics=registry):
            Explorer(system, max_configs=50_000, por=por).explore(root, pids)
        counters = registry.snapshot()["counters"]
        return (
            counters.get("explorer.edges", 0),
            counters.get("explorer.por_pruned", 0),
        )

    base_edges, base_pruned = edges(por=False)
    por_edges, por_pruned = edges(por=True)
    assert base_pruned == 0
    assert por_pruned > 0  # the reduction must actually reduce
    assert por_edges + por_pruned == base_edges


def test_adversary_certificate_is_identical_under_por():
    for protocol_maker in (lambda: CommitAdoptRounds(2), lambda: TasConsensus(2)):
        plain = space_lower_bound(System(protocol_maker()))
        pruned = space_lower_bound(System(protocol_maker()), por=True)
        assert to_json(plain) == to_json(pruned)


def test_oracle_answers_are_identical_under_por():
    protocol = CommitAdoptRounds(2)
    system = System(protocol)
    root = system.initial_configuration([0, 1])
    subsets = [frozenset({0}), frozenset({1}), frozenset({0, 1})]
    plain = ValencyOracle(system)
    por = ValencyOracle(System(CommitAdoptRounds(2)), por=True)
    for pids in subsets:
        for value in (0, 1):
            decidable = plain.can_decide(root, pids, value)
            assert decidable == por.can_decide(root, pids, value)
            if decidable:
                assert plain.witness(root, pids, value) == por.witness(
                    root, pids, value
                )


def test_iter_reachable_yields_identical_paths():
    system = System(TasConsensus(2))
    root = system.initial_configuration([0, 1])
    pids = frozenset(range(2))
    base = list(Explorer(system).iter_reachable(root, pids))
    por = list(Explorer(system, por=True).iter_reachable(root, pids))
    assert por == base
