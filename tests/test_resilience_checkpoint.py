"""Crash-consistent checkpoints: survive SIGKILL, refuse corruption.

The journal half: every recorded oracle answer is on disk before the
next one is computed, a torn final line recovers to the intact prefix
(at *every* byte offset), and mid-file or header damage is refused
loudly.  The level half: BFS snapshots resume an interrupted
exploration to a bit-identical result, and stale or corrupt snapshots
are quarantined, never trusted.  The end-to-end half: a campaign
SIGKILLed mid-run resumes from its checkpoint journal to the same
certificate as an uninterrupted run.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.analysis.explorer import Explorer
from repro.core.serialize import to_json
from repro.core.theorem import space_lower_bound
from repro.faults import (
    Budget,
    PartialProgress,
    ResumeError,
    run_adversary_guarded,
)
from repro.faults.chaos import truncate_tail
from repro.model.system import System
from repro.parallel import ShardedExplorer, WorkerPool
from repro.protocols.consensus import CommitAdoptRounds
from repro.resilience import (
    CheckpointJournal,
    LevelCheckpoint,
    atomic_write_text,
    load_checkpoint,
)

BOUNDED = dict(max_configs=20_000, max_depth=12, strict=False)


def result_tuple(result):
    return (
        dict(result.decided),
        result.visited,
        result.complete,
        result.truncated,
    )


def make_journal(path, entries=()):
    journal = CheckpointJournal(
        path, protocol="rounds:3", n=3, max_configs=111, max_depth=7,
        strict=False,
    )
    for entry in entries:
        journal.record(entry)
    journal.close()
    return journal


ENTRIES = [
    {"answer": True, "witness": [0, 1, 0]},
    {"answer": False, "witness": None},
    {"answer": True, "witness": [2]},
]


class TestCheckpointJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "run.ckpt"
        make_journal(path, ENTRIES)
        progress = load_checkpoint(path)
        assert isinstance(progress, PartialProgress)
        assert progress.protocol == "rounds:3"
        assert progress.n == 3
        assert progress.max_configs == 111
        assert progress.max_depth == 7
        assert progress.queries == ENTRIES

    def test_preloaded_entries_rewritten(self, tmp_path):
        path = tmp_path / "resumed.ckpt"
        journal = CheckpointJournal(
            path, protocol="rounds:3", n=3, entries=list(ENTRIES)
        )
        journal.close()
        progress = load_checkpoint(path)
        assert progress.queries == ENTRIES

    def test_record_after_close_raises(self, tmp_path):
        journal = make_journal(tmp_path / "closed.ckpt")
        with pytest.raises(ResumeError):
            journal.record({"answer": True, "witness": None})

    def test_fsync_every_validated(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointJournal(
                tmp_path / "bad.ckpt", protocol="p", n=2, fsync_every=0
            )

    def test_missing_and_empty_files_mean_fresh_start(self, tmp_path):
        assert load_checkpoint(tmp_path / "absent.ckpt") is None
        empty = tmp_path / "empty.ckpt"
        empty.write_text("")
        assert load_checkpoint(empty) is None

    def test_legacy_whole_file_json_still_loads(self, tmp_path):
        progress = PartialProgress(
            protocol="rounds:3", n=3, queries=list(ENTRIES),
            max_configs=99, max_depth=5, note="legacy",
        )
        path = tmp_path / "legacy.json"
        path.write_text(to_json(progress))
        loaded = load_checkpoint(path)
        assert loaded.queries == ENTRIES
        assert loaded.max_configs == 99

    def test_legacy_garbage_refused(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("not a checkpoint at all")
        with pytest.raises(ResumeError):
            load_checkpoint(path)

    def test_torn_tail_recovers_prefix_at_every_byte(self, tmp_path):
        path = tmp_path / "torn.ckpt"
        make_journal(path, ENTRIES)
        pristine = path.read_bytes()
        lines = pristine.decode().splitlines()
        # The final record plus its newline: every truncation point in
        # it must recover exactly the first two entries.
        final_len = len(lines[-1]) + 1
        for drop in range(1, final_len + 1):
            path.write_bytes(pristine)
            truncate_tail(path, drop_bytes=drop)
            progress = load_checkpoint(path)
            # Dropping only the newline leaves the record complete; any
            # deeper cut tears it and recovers the two-entry prefix.
            expected = ENTRIES if drop == 1 else ENTRIES[:2]
            assert progress.queries == expected, f"drop={drop}"

    def test_mid_file_corruption_refused(self, tmp_path):
        path = tmp_path / "midfile.ckpt"
        make_journal(path, ENTRIES)
        lines = path.read_text().splitlines()
        lines[2] = lines[2][: len(lines[2]) // 2]  # tear a middle record
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ResumeError, match="line 3"):
            load_checkpoint(path)

    def test_damaged_header_refused(self, tmp_path):
        path = tmp_path / "header.ckpt"
        make_journal(path, ENTRIES)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["v"] = 99
        lines[0] = json.dumps(header, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ResumeError, match="version"):
            load_checkpoint(path)

    def test_atomic_write_replaces_not_tears(self, tmp_path):
        path = tmp_path / "atomic.txt"
        atomic_write_text(path, "first")
        atomic_write_text(path, "second")
        assert path.read_text() == "second"
        assert list(tmp_path.glob(".tmp-ckpt-*")) == []


class TestLevelCheckpoint:
    TOKEN = ("root", (0, 1, 2), None, 20_000, 12, False, False)

    def test_save_load_round_trip(self, tmp_path):
        ckpt = LevelCheckpoint(tmp_path / "lvl")
        state = {"parents": {"a": None}, "depth": 3}
        assert ckpt.save(self.TOKEN, state)
        assert LevelCheckpoint(tmp_path / "lvl").load(self.TOKEN) == state

    def test_stale_token_ignored(self, tmp_path):
        ckpt = LevelCheckpoint(tmp_path / "lvl")
        ckpt.save(self.TOKEN, {"depth": 1})
        other = ("other",) + self.TOKEN[1:]
        assert ckpt.load(other) is None
        # The snapshot survives: it belongs to the token that wrote it.
        assert ckpt.load(self.TOKEN) == {"depth": 1}

    def test_corrupt_snapshot_quarantined(self, tmp_path):
        path = tmp_path / "lvl"
        ckpt = LevelCheckpoint(path)
        ckpt.save(self.TOKEN, {"depth": 1})
        path.write_bytes(b"\x80\x04 not a pickle")
        assert ckpt.load(self.TOKEN) is None
        assert path.with_suffix(".corrupt").exists()
        assert not path.exists()

    def test_every_throttles_saves(self, tmp_path):
        ckpt = LevelCheckpoint(tmp_path / "lvl", every=3)
        saved = [ckpt.save(self.TOKEN, {"depth": i}) for i in range(7)]
        assert saved == [True, False, False, True, False, False, True]

    def test_clear_removes_snapshot(self, tmp_path):
        ckpt = LevelCheckpoint(tmp_path / "lvl")
        ckpt.save(self.TOKEN, {"depth": 1})
        ckpt.clear()
        assert ckpt.load(self.TOKEN) is None
        ckpt.clear()  # idempotent

    def test_rejects_bad_every(self, tmp_path):
        with pytest.raises(ValueError):
            LevelCheckpoint(tmp_path / "lvl", every=0)


class _CrashAfter(LevelCheckpoint):
    """A level checkpoint that crashes the exploration after N saves."""

    def __init__(self, path, crash_after):
        super().__init__(path)
        self.crash_after = crash_after
        self.saves = 0

    def save(self, token, state):
        wrote = super().save(token, state)
        if wrote:
            self.saves += 1
            if self.saves >= self.crash_after:
                raise RuntimeError("injected crash at level boundary")
        return wrote


class TestExplorerLevelResume:
    def test_interrupted_exploration_resumes_bit_identical(
        self, tmp_path, worker_pool, workers
    ):
        system = System(CommitAdoptRounds(3))
        root = system.initial_configuration([0, 1, 0])
        pids = frozenset({0, 1, 2})
        seq = Explorer(system, **BOUNDED).explore(root, pids)

        path = tmp_path / "levels"
        crasher = _CrashAfter(path, crash_after=2)
        explorer = ShardedExplorer(
            system, workers=workers, pool=worker_pool, **BOUNDED
        )
        with pytest.raises(RuntimeError, match="injected crash"):
            explorer.explore(root, pids, checkpoint=crasher)
        assert path.exists()  # the snapshot survived the crash

        par = explorer.explore(
            root, pids, checkpoint=LevelCheckpoint(path)
        )
        assert result_tuple(seq) == result_tuple(par)
        assert not path.exists()  # cleared on completion

    def test_completed_exploration_clears_checkpoint(
        self, tmp_path, worker_pool, workers
    ):
        system = System(CommitAdoptRounds(3))
        root = system.initial_configuration([0, 1, 0])
        pids = frozenset({0, 1, 2})
        path = tmp_path / "levels"
        par = ShardedExplorer(
            system, workers=workers, pool=worker_pool, **BOUNDED
        ).explore(root, pids, checkpoint=LevelCheckpoint(path))
        seq = Explorer(system, **BOUNDED).explore(root, pids)
        assert result_tuple(seq) == result_tuple(par)
        assert not path.exists()


class TestGuardedCheckpointResume:
    def test_budget_checkpoint_resumes_to_same_certificate(self, tmp_path):
        reference = space_lower_bound(System(CommitAdoptRounds(3)))
        path = tmp_path / "run.ckpt"
        outcome = run_adversary_guarded(
            System(CommitAdoptRounds(3)),
            budget=Budget(max_steps=5),
            checkpoint=str(path),
        )
        assert outcome.status == "budget"
        progress = load_checkpoint(path)
        assert progress is not None
        assert progress.queries == outcome.partial.queries
        resumed = run_adversary_guarded(
            System(CommitAdoptRounds(3)), resume=progress
        )
        assert resumed.status == "certificate"
        assert to_json(resumed.certificate) == to_json(reference)

    def test_chained_checkpoint_resumes_converge(self, tmp_path):
        reference = space_lower_bound(System(CommitAdoptRounds(3)))
        path = tmp_path / "chain.ckpt"
        progress = None
        # max_steps must cover the single most expensive query (replay
        # of the journaled prefix is free) -- same bound as the in-memory
        # fixed-budget chain in test_faults_budget.py.
        for _ in range(30):
            outcome = run_adversary_guarded(
                System(CommitAdoptRounds(3)),
                budget=Budget(max_steps=25),
                resume=progress,
                checkpoint=str(path),
            )
            if outcome.status == "certificate":
                break
            assert outcome.status == "budget"
            progress = load_checkpoint(path)
            assert progress is not None
        assert outcome.status == "certificate"
        assert to_json(outcome.certificate) == to_json(reference)


KILL_SCRIPT = """
import sys
from repro.faults import run_adversary_guarded
from repro.model.system import System
from repro.protocols.consensus import CommitAdoptRounds

outcome = run_adversary_guarded(
    System(CommitAdoptRounds(3)), checkpoint=sys.argv[1]
)
sys.exit(0 if outcome.status == "certificate" else 1)
"""

# Same campaign through the compiled kernel; the parent environment
# forces REPRO_KERNEL_SPILL_THRESHOLD=1 so every row spills to disk.
KILL_SPILL_SCRIPT = """
import sys
from repro.faults import run_adversary_guarded
from repro.model.system import System
from repro.protocols.consensus import CommitAdoptRounds

outcome = run_adversary_guarded(
    System(CommitAdoptRounds(3)), checkpoint=sys.argv[1], kernel="compiled"
)
sys.exit(0 if outcome.status == "certificate" else 1)
"""


class TestSigkillResume:
    def test_sigkilled_campaign_resumes_to_same_certificate(self, tmp_path):
        reference = space_lower_bound(System(CommitAdoptRounds(3)))
        path = tmp_path / "killed.ckpt"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        child = subprocess.Popen(
            [sys.executable, "-c", KILL_SCRIPT, str(path)], env=env
        )
        try:
            # Wait for the journal to show real progress, then SIGKILL.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if child.poll() is not None:
                    break
                if path.exists() and path.read_text().count("\n") >= 3:
                    break
                time.sleep(0.005)
            if child.poll() is None:
                child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
        progress = load_checkpoint(path)
        assert progress is not None
        resumed = run_adversary_guarded(
            System(CommitAdoptRounds(3)), resume=progress
        )
        assert resumed.status == "certificate"
        assert to_json(resumed.certificate) == to_json(reference)

    def test_sigkill_during_forced_spill_resumes_byte_identical(
        self, tmp_path
    ):
        """Satellite: SIGKILL the compiled kernel while every frontier
        row is being spilled to disk segments (threshold forced to one
        configuration).  Segments are written write-temp/fsync/rename,
        so the kill can tear nothing the resume would read: the
        checkpoint journal replays and the certificate comes out byte
        for byte the interpreter's."""
        reference = space_lower_bound(
            System(CommitAdoptRounds(3)), kernel="interp"
        )
        path = tmp_path / "killed-spill.ckpt"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_KERNEL_SPILL_THRESHOLD"] = "1"
        env["REPRO_KERNEL_FP_BITS"] = "8"
        child = subprocess.Popen(
            [sys.executable, "-c", KILL_SPILL_SCRIPT, str(path)], env=env
        )
        try:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if child.poll() is not None:
                    break
                if path.exists() and path.read_text().count("\n") >= 3:
                    break
                time.sleep(0.005)
            if child.poll() is None:
                child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
        progress = load_checkpoint(path)
        assert progress is not None
        resumed = run_adversary_guarded(
            System(CommitAdoptRounds(3)), resume=progress, kernel="compiled"
        )
        assert resumed.status == "certificate"
        assert to_json(resumed.certificate) == to_json(reference)


class TestConcurrentOpenRefused:
    """Satellite: two live writers on one journal path are refused.

    The journal format tolerates exactly one torn *final* line; two
    interleaved appenders would produce interior tears indistinguishable
    from corruption.  The writer lock turns that silent hazard into a
    clean ``ResilienceError`` (CLI: one-line ``error: ...``, exit 1).
    """

    def test_second_open_is_refused_with_holder_pid(self, tmp_path):
        from repro.errors import ResilienceError

        path = tmp_path / "busy.ckpt"
        first = CheckpointJournal(path, protocol="rounds:3", n=3)
        try:
            with pytest.raises(
                ResilienceError, match=rf"pid {os.getpid()}"
            ) as excinfo:
                CheckpointJournal(path, protocol="rounds:3", n=3)
            assert "concurrent use would tear it" in str(excinfo.value)
        finally:
            first.close()

    def test_resume_read_of_a_live_journal_is_refused(self, tmp_path):
        from repro.errors import ResilienceError

        path = tmp_path / "live.ckpt"
        writer = CheckpointJournal(path, protocol="rounds:3", n=3)
        writer.record({"answer": True, "witness": [0]})
        try:
            with pytest.raises(ResilienceError, match="still being written"):
                load_checkpoint(path)
        finally:
            writer.close()

    def test_close_releases_the_lock_for_the_next_run(self, tmp_path):
        path = tmp_path / "relay.ckpt"
        make_journal(path, ENTRIES)  # opens and closes
        again = CheckpointJournal(
            path, protocol="rounds:3", n=3, entries=list(ENTRIES)
        )
        again.close()
        assert load_checkpoint(path).queries == ENTRIES

    def test_stale_lock_file_of_a_dead_writer_does_not_block(
        self, tmp_path
    ):
        # A SIGKILLed writer leaves the .lock file behind, but the OS
        # dropped its flock with the process -- the file alone must
        # never wedge the path.
        path = tmp_path / "orphan.ckpt"
        make_journal(path, ENTRIES)
        lock = Path(f"{path}.lock")
        assert lock.exists()
        lock.write_text("999999\n")  # a pid that is long gone
        journal = CheckpointJournal(path, protocol="rounds:3", n=3)
        journal.close()
        assert load_checkpoint(path) is not None

    def test_cli_resume_against_a_held_journal_exits_1_cleanly(
        self, tmp_path
    ):
        path = tmp_path / "held.ckpt"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        holder = subprocess.Popen(
            [sys.executable, "-c", HOLD_SCRIPT, str(path)],
            env=env, stdout=subprocess.PIPE, text=True,
        )
        try:
            assert holder.stdout.readline().strip() == "held"
            result = subprocess.run(
                [sys.executable, "-m", "repro", "adversary", "rounds:2",
                 "--resume", str(path)],
                env=env, capture_output=True, text=True, timeout=60,
            )
            assert result.returncode == 1
            assert "error: checkpoint journal" in result.stdout
            assert "another process" in result.stdout
            assert "Traceback" not in result.stderr
        finally:
            holder.terminate()
            holder.wait(timeout=10)


HOLD_SCRIPT = """
import sys, time
from repro.resilience import CheckpointJournal

journal = CheckpointJournal(sys.argv[1], protocol="rounds:2", n=2)
print("held", flush=True)
time.sleep(60)
"""
