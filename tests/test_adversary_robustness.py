"""Robustness fuzz: the adversary against randomly generated protocols.

Random register "protocols" are almost never correct consensus
protocols; the property under test is the core machinery's *contract*:
``space_lower_bound`` either returns a certificate that replay-validates
or raises one of its declared errors -- it never crashes with an
unexpected exception and never emits a bogus certificate.
"""

import random

import pytest

from repro.errors import (
    AdversaryError,
    CertificateError,
    ExplorationLimitError,
    ViolationError,
)
from repro.core.theorem import space_lower_bound
from repro.model.program import ProgramBuilder, ProgramProtocol
from repro.model.registers import register
from repro.model.system import System

EXPECTED = (AdversaryError, ViolationError, ExplorationLimitError)


def random_protocol(rng: random.Random, n: int, registers: int):
    """A random loop-free read/write program ending in a decision."""

    def build_program():
        builder = ProgramBuilder()
        slots = max(1, registers)
        for index in range(rng.randint(1, 5)):
            reg = rng.randrange(slots)
            if rng.random() < 0.5:
                builder.read(reg, f"x{index}")
            else:
                source = rng.choice(["v"] + [f"x{j}" for j in range(index)])
                builder.write(
                    reg, (lambda s: lambda e: e.get(s, 0))(source)
                )
        outcome = rng.choice(
            [
                lambda e: e["v"],
                lambda e: 1 - e["v"],
                lambda e: 0,
                lambda e: 1,
            ]
        )
        read_vars = [
            name for name in (f"x{j}" for j in range(6))
        ]

        def decide(env):
            for name in read_vars:
                if env.get(name) not in (None,):
                    value = env.get(name)
                    if value in (0, 1):
                        return value
            return outcome(env) if callable(outcome) else outcome

        builder.decide(decide)
        return builder.build()

    programs = [build_program() for _ in range(n)]
    return ProgramProtocol(
        f"random-{rng.random():.6f}",
        n,
        [register(None) for _ in range(registers)],
        programs,
        lambda pid, value: {"v": value},
    )


class TestAdversaryContract:
    @pytest.mark.parametrize("seed", range(25))
    def test_certificate_or_declared_error(self, seed):
        rng = random.Random(seed)
        n = rng.choice([2, 3])
        registers = rng.randint(1, 4)
        protocol = random_protocol(rng, n, registers)
        system = System(protocol)
        try:
            certificate = space_lower_bound(
                system, strict=False, max_configs=5_000, max_depth=30
            )
        except EXPECTED:
            return
        # A certificate came back: it must replay-validate and claim at
        # most the registers the protocol has.
        try:
            certificate.validate(System(protocol))
        except CertificateError as exc:  # pragma: no cover
            pytest.fail(f"invalid certificate escaped: {exc}")
        assert certificate.bound <= registers

    @pytest.mark.parametrize("seed", range(25, 40))
    def test_checker_contract_on_random_protocols(self, seed):
        from repro.analysis.checker import check_consensus_exhaustive

        rng = random.Random(seed)
        protocol = random_protocol(rng, 2, rng.randint(1, 3))
        system = System(protocol)
        result = check_consensus_exhaustive(
            system, [0, 1], max_configs=20_000, strict=False
        )
        if not result.ok:
            violation = result.first_violation()
            config = system.initial_configuration([0, 1])
            config, _ = system.run(
                config, violation.schedule, skip_halted=True
            )
            if violation.kind == "agreement":
                assert len(system.decided_values(config)) > 1
            else:
                assert violation.kind in ("validity",)
