"""Torn-tail tolerance for the trace journal (S3).

A process killed mid-``write`` leaves a JSONL journal whose final line
is cut at an arbitrary byte.  The tolerant reader must recover exactly
the intact prefix for *every* truncation offset of the final record,
the strict reader must still refuse the damage, and the ``stats`` /
``trace`` CLI must keep working on the recovered prefix (with a
warning) rather than dying on the artifact of a crash they exist to
diagnose.
"""

import pytest

from repro.cli import main
from repro.errors import JournalError
from repro.faults.chaos import truncate_tail
from repro.obs import parse_journal, parse_journal_tolerant


@pytest.fixture(scope="module")
def traced_journal(tmp_path_factory):
    """A real traced adversary run's journal (certificate, exit 0)."""
    path = tmp_path_factory.mktemp("torn") / "run.jsonl"
    assert main(["adversary", "rounds:3", "--trace-out", str(path)]) == 0
    return path


def test_intact_journal_has_no_warning(traced_journal):
    records, warning = parse_journal_tolerant(traced_journal)
    assert warning is None
    assert records == parse_journal(traced_journal)


def test_every_byte_offset_of_final_record_recovers_prefix(
    traced_journal, tmp_path
):
    pristine = traced_journal.read_bytes()
    records = parse_journal(traced_journal)
    final_line = pristine.rstrip(b"\n").rsplit(b"\n", 1)[-1]
    path = tmp_path / "torn.jsonl"
    # drop=1 removes only the newline, leaving the record complete;
    # dropping the whole line leaves a clean shorter journal; every cut
    # in between tears the record and must recover records[:-1] with a
    # warning (and still raise under the strict reader).
    for drop in range(1, len(final_line) + 2):
        path.write_bytes(pristine)
        truncate_tail(path, drop_bytes=drop)
        recovered, warning = parse_journal_tolerant(path)
        if drop == 1:
            assert warning is None
            assert recovered == records
        elif drop == len(final_line) + 1:
            assert warning is None
            assert recovered == records[:-1]
        else:
            assert warning is not None, f"drop={drop}"
            assert recovered == records[:-1], f"drop={drop}"
            with pytest.raises(JournalError):
                parse_journal(path)


def test_mid_file_damage_still_raises(traced_journal, tmp_path):
    lines = traced_journal.read_text().splitlines()
    assert len(lines) > 3
    lines[1] = lines[1][: len(lines[1]) // 2]
    path = tmp_path / "midfile.jsonl"
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(JournalError, match="line 2"):
        parse_journal_tolerant(path)


@pytest.fixture
def torn_copy(traced_journal, tmp_path):
    """The traced journal with its final (metrics) record torn."""
    path = tmp_path / "torn.jsonl"
    path.write_bytes(traced_journal.read_bytes())
    truncate_tail(path, drop_bytes=10)
    return path


def test_stats_survives_torn_tail(torn_copy, capsys):
    # The torn final line is the metrics record, so stats falls back to
    # its no-metrics-record error path -- but must not crash on the
    # damage, and must say what it dropped.
    rc = main(["stats", str(torn_copy)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "torn" in out or "dropped" in out or "bad journal" in out
    assert "no metrics record" in out


def test_trace_survives_torn_tail(torn_copy, capsys):
    rc = main(["trace", str(torn_copy)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "adversary" in out


def test_stats_renders_on_torn_event_tail(traced_journal, tmp_path, capsys):
    # Tear *two* records off: the journal now ends mid-event, with the
    # metrics record gone entirely -- stats still reports cleanly.
    lines = traced_journal.read_text().splitlines()
    metrics_line = lines[-1]
    body = "\n".join(lines[:-1]) + "\n"
    path = tmp_path / "tornevent.jsonl"
    path.write_text(body + metrics_line)  # no trailing newline
    truncate_tail(path, drop_bytes=len(metrics_line) + 5)
    records, warning = parse_journal_tolerant(path)
    assert warning is not None
    assert all(record["type"] != "metrics" for record in records)
    assert main(["stats", str(path)]) == 1
    assert "no metrics record" in capsys.readouterr().out
