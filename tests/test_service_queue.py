"""The job queue: validation at the door, the contract at the exit.

In-process tests (no daemon, no HTTP): submissions are validated
before a row exists, every job kind ends in a terminal state mapped
from its exit code, failures become ``error`` rows instead of dead
threads, and drain/recover implement the graceful-restart story.
"""

import time

import pytest

from repro.errors import ServiceError
from repro.service import JobQueue, ResultLedger, validate_submission
from repro.service.queue import DEFAULT_PARAMS


def wait_terminal(ledger, key, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = ledger.job(key)
        if job["state"] not in ("queued", "running"):
            return job
        time.sleep(0.02)
    raise AssertionError(f"job {key} never reached a terminal state")


@pytest.fixture
def queue(tmp_path):
    ledger = ResultLedger(tmp_path / "ledger.sqlite")
    q = JobQueue(ledger, tmp_path, job_workers=1)
    q.start()
    yield q
    q.drain(grace=30.0)


class TestValidation:
    def test_defaults_are_merged_per_submission(self):
        job = validate_submission(
            {"kind": "adversary", "spec": "rounds:2",
             "params": {"max_depth": 5}}
        )
        assert job["params"] == {"max_depth": 5}
        assert "max_depth" in DEFAULT_PARAMS

    @pytest.mark.parametrize("payload,match", [
        ("not-a-dict", "JSON object"),
        ({"kind": "bake", "spec": "rounds:2"}, "unknown job kind"),
        ({"kind": "adversary"}, "need a protocol 'spec'"),
        ({"kind": "adversary", "spec": "nonsense:2"}, "unknown protocol family"),
        ({"kind": "adversary", "spec": "rounds:x"}, "bad protocol spec"),
        ({"kind": "adversary", "spec": "rounds:2", "params": []},
         "'params' must be"),
        ({"kind": "adversary", "spec": "rounds:2",
          "params": {"frobnicate": 1}}, "unknown job params"),
    ])
    def test_bad_submissions_are_refused_at_the_door(self, payload, match):
        with pytest.raises(ServiceError, match=match):
            validate_submission(payload)

    def test_fuzz_jobs_need_no_spec(self):
        assert validate_submission({"kind": "fuzz"})["spec"] == "generated"


class TestExecution:
    def test_adversary_job_certifies_and_ledgers_the_certificate(
        self, queue
    ):
        from repro.core.serialize import to_json
        from repro.core.theorem import space_lower_bound
        from repro.model.system import System
        from repro.protocols.consensus import CommitAdoptRounds

        key = queue.submit({"kind": "adversary", "spec": "rounds:2"})
        job = wait_terminal(queue.ledger, key)
        assert job["state"] == "certified"
        assert job["exit_code"] == 0
        (row,) = queue.ledger.results(job_key=key)
        reference = to_json(space_lower_bound(System(CommitAdoptRounds(2))))
        assert row["certificate"] == reference
        assert row["protocol_digest"]
        assert row["trace_journal"].endswith(f"{key}.jsonl")

    def test_violating_protocol_maps_to_violation_with_witness(
        self, queue
    ):
        key = queue.submit(
            {"kind": "adversary", "spec": "split-brain:3"}
        )
        job = wait_terminal(queue.ledger, key)
        assert job["state"] == "violation"
        assert job["exit_code"] == 2
        (row,) = queue.ledger.results(job_key=key)
        assert row["exit_code"] == 2

    def test_budget_exhaustion_maps_to_partial(self, queue):
        key = queue.submit({
            "kind": "adversary", "spec": "rounds:3",
            "params": {"budget": 10},
        })
        job = wait_terminal(queue.ledger, key)
        assert job["state"] == "partial"
        assert job["exit_code"] == 3

    def test_absint_job_runs_statically(self, queue):
        key = queue.submit({"kind": "absint", "spec": "rounds:2"})
        job = wait_terminal(queue.ledger, key)
        assert job["state"] == "certified"
        (row,) = queue.ledger.results(job_key=key)
        assert row["kind"] == "absint"
        assert row["certificate"]

    def test_fuzz_job_ledgers_the_campaign_journal(self, queue):
        from pathlib import Path

        key = queue.submit({
            "kind": "fuzz",
            "params": {"seed": 3, "count": 2, "mutants": 1,
                       "max_configs": 2000, "max_depth": 12},
        })
        job = wait_terminal(queue.ledger, key)
        assert job["state"] == "certified"  # honest engines agree
        assert "explored" in job["detail"]
        (row,) = queue.ledger.results(job_key=key)
        assert row["kind"] == "fuzz"
        assert row["protocol"] == "fuzz:seed=3"
        assert row["protocol_digest"]
        assert Path(row["trace_journal"]).exists()

    def test_runtime_failure_becomes_an_error_row(self, queue):
        # Valid at the door, broken at run time: the spec row is
        # rewritten underneath the job (simulating e.g. a zoo specimen
        # deleted between submit and run).
        key = queue.ledger.submit_job("adversary", "zoo:feedfacedeadbeef")
        queue._tasks.put(key)
        job = wait_terminal(queue.ledger, key)
        assert job["state"] == "error"
        assert job["exit_code"] == 1
        assert "zoo" in job["detail"] or "spec" in job["detail"]
        (row,) = queue.ledger.results(job_key=key)
        assert row["exit_code"] == 1


class TestLifecycle:
    def test_drain_refuses_new_submissions(self, tmp_path):
        ledger = ResultLedger(tmp_path / "l.sqlite")
        q = JobQueue(ledger, tmp_path)
        q.start()
        assert q.drain(grace=5.0) is True
        with pytest.raises(ServiceError, match="shutting down"):
            q.submit({"kind": "absint", "spec": "rounds:2"})

    def test_recover_requeues_interrupted_jobs(self, tmp_path):
        ledger = ResultLedger(tmp_path / "l.sqlite")
        # A previous daemon died mid-job: the row is still 'running'.
        key = ledger.submit_job("absint", "rounds:2")
        ledger.mark_running(key)
        q = JobQueue(ledger, tmp_path)
        assert q.recover() == [key]
        q.start()
        job = wait_terminal(ledger, key)
        assert job["state"] == "certified"
        assert job["attempts"] == 2  # the lost attempt plus the rerun
        q.drain(grace=30.0)

    def test_snapshot_reports_queue_shape(self, queue):
        snap = queue.snapshot()
        assert snap["job_workers"] == 1
        assert snap["draining"] is False
