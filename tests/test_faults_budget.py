"""Watchdog budgets and the resume protocol.

The headline property: a budget-interrupted adversary run, resumed from
its serialized checkpoint, completes to the *same* certificate as an
uninterrupted run.  The tests prove the equality end to end, including a
JSON round trip of the checkpoint.
"""

import pytest

from repro.errors import BudgetExhausted, ViolationError
from repro.core.serialize import certificate_from_json, to_json
from repro.core.theorem import space_lower_bound
from repro.model.system import System
from repro.faults import (
    Budget,
    PartialProgress,
    QueryJournal,
    ResumeError,
    run_adversary_guarded,
)
from repro.protocols.consensus import CommitAdoptRounds, SplitBrainConsensus


class TestBudget:
    def test_step_budget_raises_on_overrun(self):
        budget = Budget(max_steps=3)
        budget.tick()
        budget.tick(2)
        with pytest.raises(BudgetExhausted) as excinfo:
            budget.tick()
        assert excinfo.value.spent_steps == 4

    def test_deadline_raises_once_checked(self):
        budget = Budget(deadline=1e-9, check_every=1)
        with pytest.raises(BudgetExhausted):
            for _ in range(10_000):
                budget.tick()

    def test_deadline_checked_lazily(self):
        # With a huge check_every the first few ticks never hit the clock.
        budget = Budget(deadline=1e-9, check_every=1_000_000)
        for _ in range(10):
            budget.tick()

    def test_invalid_budgets_rejected(self):
        with pytest.raises(ValueError):
            Budget(max_steps=0)
        with pytest.raises(ValueError):
            Budget(deadline=-1.0)

    def test_describe_reports_spending(self):
        budget = Budget(max_steps=10)
        budget.tick(4)
        assert "4/10 steps" in budget.describe()


class TestThreeOutcomes:
    """Every guarded run ends in exactly one of the three outcomes."""

    def test_certificate_outcome(self):
        outcome = run_adversary_guarded(System(CommitAdoptRounds(2)))
        assert outcome.status == "certificate"
        assert outcome.certificate.bound == 1
        assert "pins" in outcome.describe()

    def test_violation_outcome_carries_witness(self):
        outcome = run_adversary_guarded(System(SplitBrainConsensus(3)))
        assert outcome.status == "violation"
        assert isinstance(outcome.violation, ViolationError)
        witness = outcome.violation.witness
        assert witness is not None
        # The witness replays to the violation it claims.
        system = System(SplitBrainConsensus(3))
        config = system.initial_configuration([0, 1, 1])
        final, _ = system.run(config, witness, skip_halted=True)
        assert len(system.decided_values(final)) > 1

    def test_budget_outcome_carries_partial_progress(self):
        outcome = run_adversary_guarded(
            System(CommitAdoptRounds(3)), budget=Budget(max_steps=5)
        )
        assert outcome.status == "budget"
        assert isinstance(outcome.partial, PartialProgress)
        assert outcome.partial.queries, "journal must not be empty"
        assert "resume" in outcome.describe()


class TestResume:
    def test_resume_completes_to_same_certificate(self):
        """The acceptance criterion: interrupted + resumed == uninterrupted."""
        uninterrupted = space_lower_bound(System(CommitAdoptRounds(3)))

        first = run_adversary_guarded(
            System(CommitAdoptRounds(3)), budget=Budget(max_steps=5)
        )
        assert first.status == "budget"
        second = run_adversary_guarded(
            System(CommitAdoptRounds(3)), resume=first.partial
        )
        assert second.status == "certificate"
        assert second.certificate == uninterrupted

    def test_resume_after_json_round_trip(self):
        first = run_adversary_guarded(
            System(CommitAdoptRounds(3)), budget=Budget(max_steps=5),
            spec="rounds:3",
        )
        payload = to_json(first.partial)
        restored = certificate_from_json(payload)
        assert isinstance(restored, PartialProgress)
        assert restored.protocol == "rounds:3"
        assert restored.queries == first.partial.queries

        second = run_adversary_guarded(
            System(CommitAdoptRounds(3)), resume=restored
        )
        uninterrupted = space_lower_bound(System(CommitAdoptRounds(3)))
        assert second.status == "certificate"
        assert second.certificate == uninterrupted

    def test_chained_resumes_converge(self):
        """Budget too small to finish in one go: keep resuming until done."""
        uninterrupted = space_lower_bound(System(CommitAdoptRounds(3)))
        outcome = run_adversary_guarded(
            System(CommitAdoptRounds(3)), budget=Budget(max_steps=5)
        )
        hops = 0
        while outcome.status == "budget":
            hops += 1
            assert hops < 50, "resume chain must converge"
            outcome = run_adversary_guarded(
                System(CommitAdoptRounds(3)),
                budget=Budget(max_steps=5 * (hops + 1)),
                resume=outcome.partial,
            )
        assert outcome.status == "certificate"
        assert outcome.certificate == uninterrupted

    def test_fixed_budget_chain_converges(self):
        """Replaying the journaled prefix is free, so even a chain of
        runs under the SAME small budget converges (provided the budget
        covers the single most expensive query)."""
        uninterrupted = space_lower_bound(System(CommitAdoptRounds(3)))
        outcome = run_adversary_guarded(
            System(CommitAdoptRounds(3)), budget=Budget(max_steps=25)
        )
        hops = 0
        while outcome.status == "budget":
            hops += 1
            assert hops < 20, "fixed-budget resume chain must converge"
            outcome = run_adversary_guarded(
                System(CommitAdoptRounds(3)), budget=Budget(max_steps=25),
                resume=outcome.partial,
            )
        assert outcome.certificate == uninterrupted

    def test_journal_refuses_record_while_replaying(self):
        journal = QueryJournal([{"answer": True, "witness": None}])
        assert journal.replaying
        with pytest.raises(ResumeError):
            journal.record({"answer": False, "witness": None})

    def test_budget_charged_only_for_computed_queries(self):
        """A resumed run under the same tiny budget gets further than its
        predecessor did -- replayed answers are free."""
        first = run_adversary_guarded(
            System(CommitAdoptRounds(3)), budget=Budget(max_steps=5)
        )
        second = run_adversary_guarded(
            System(CommitAdoptRounds(3)), budget=Budget(max_steps=5),
            resume=first.partial,
        )
        if second.status == "budget":
            assert len(second.partial.queries) > len(first.partial.queries)
        else:
            assert second.status == "certificate"
