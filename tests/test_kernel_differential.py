"""Property-based differentials: the compiled kernel changes nothing.

Hypothesis generates small arbitrary protocol automata (the same
strategy as tests/test_parallel_differential.py) and checks that the
compiled packed-integer kernel (:mod:`repro.kernel`) returns *exactly*
what the interpreted explorer returns: identical reachable-set
fingerprints (decided values, witness schedules, visited counts,
completeness flags), identical certificates, identical guarded exit
codes -- across 1 vs N workers, POR on and off, with and without the
incremental engine, and with the out-of-core spill forced down to a
one-configuration threshold.  Any divergence is a soundness bug in the
lowering, found here on a five-state automaton instead of inside a
lemma driver.
"""

import json
import os

from hypothesis import given
import hypothesis.strategies as st

from repro.analysis.explorer import Explorer
from repro.core.serialize import to_json
from repro.core.theorem import space_lower_bound
from repro.errors import BudgetExhausted, ExplorationLimitError
from repro.faults.budget import Budget
from repro.model.system import System
from repro.parallel import ShardedExplorer
from repro.protocols.consensus import CommitAdoptRounds

from tests.test_parallel_differential import (
    DIFFERENTIAL,
    VALUES,
    fresh_system,
    table_protocols,
)

SPILL_ENV = "REPRO_KERNEL_SPILL_THRESHOLD"
FP_ENV = "REPRO_KERNEL_FP_BITS"


def result_fingerprint(result):
    """Everything the exploration contract promises, as one value."""
    return (
        result.visited,
        result.complete,
        result.truncated,
        {value: tuple(schedule) for value, schedule in result.decided.items()},
    )


def explore_with(protocol, kernel, *, inputs, por=False, engine=None,
                 stop_when=None, max_configs=50_000):
    system = fresh_system(protocol)
    explorer = Explorer(
        system, max_configs=max_configs, strict=False, por=por,
        kernel=kernel, engine=engine,
    )
    root = system.initial_configuration(inputs)
    result = explorer.explore(
        root, frozenset(range(protocol.n)), stop_when=stop_when
    )
    explorer.close()
    return result


def forced_spill(body):
    """Run ``body()`` with the spill threshold forced to 1 configuration
    and the fingerprint index narrowed to 8 bits (collision-heavy, so
    the fetch-verify path is actually exercised)."""
    saved = {name: os.environ.get(name) for name in (SPILL_ENV, FP_ENV)}
    os.environ[SPILL_ENV] = "1"
    os.environ[FP_ENV] = "8"
    try:
        return body()
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


@given(
    protocol=table_protocols(),
    inputs_seed=st.integers(0, 7),
    por=st.booleans(),
)
@DIFFERENTIAL
def test_compiled_exploration_is_bit_identical(protocol, inputs_seed, por):
    inputs = [(inputs_seed >> pid) & 1 for pid in range(protocol.n)]
    interp = explore_with(protocol, "interp", inputs=inputs, por=por)
    compiled = explore_with(protocol, "compiled", inputs=inputs, por=por)
    assert result_fingerprint(compiled) == result_fingerprint(interp)
    assert compiled.witnesses_replay(fresh_system(protocol))


@given(protocol=table_protocols(), value=st.sampled_from(VALUES))
@DIFFERENTIAL
def test_compiled_stop_when_is_bit_identical(protocol, value):
    inputs = [0, 1] + [0] * (protocol.n - 2)
    target = frozenset({value})
    interp = explore_with(protocol, "interp", inputs=inputs, stop_when=target)
    compiled = explore_with(
        protocol, "compiled", inputs=inputs, stop_when=target
    )
    assert result_fingerprint(compiled) == result_fingerprint(interp)


@given(protocol=table_protocols(), inputs_seed=st.integers(0, 7))
@DIFFERENTIAL
def test_compiled_with_incremental_engine_is_bit_identical(
    protocol, inputs_seed
):
    from repro.core.incremental import IncrementalEngine

    inputs = [(inputs_seed >> pid) & 1 for pid in range(protocol.n)]
    interp = explore_with(protocol, "interp", inputs=inputs)
    system = fresh_system(protocol)
    engine = IncrementalEngine(system)
    explorer = Explorer(
        system, max_configs=50_000, strict=False,
        kernel="compiled", engine=engine,
    )
    pids = frozenset(range(protocol.n))
    root = system.initial_configuration(inputs)
    # Twice: the second pass exercises the warmed persistent space and
    # the engine's registered-graph index.
    first = explorer.explore(root, pids)
    second = explorer.explore(root, pids)
    explorer.close()
    assert result_fingerprint(first) == result_fingerprint(interp)
    assert result_fingerprint(second) == result_fingerprint(interp)


@given(protocol=table_protocols(), inputs_seed=st.integers(0, 7))
@DIFFERENTIAL
def test_compiled_forced_spill_is_bit_identical(protocol, inputs_seed):
    inputs = [(inputs_seed >> pid) & 1 for pid in range(protocol.n)]
    interp = explore_with(protocol, "interp", inputs=inputs)
    compiled = forced_spill(
        lambda: explore_with(protocol, "compiled", inputs=inputs)
    )
    assert result_fingerprint(compiled) == result_fingerprint(interp)
    assert compiled.witnesses_replay(fresh_system(protocol))


@given(protocol=table_protocols(), inputs_seed=st.integers(0, 7))
@DIFFERENTIAL
def test_compiled_one_vs_n_workers(protocol, inputs_seed, worker_pool, workers):
    """workers>1 falls back (recorded) and still matches workers=1."""
    inputs = [(inputs_seed >> pid) & 1 for pid in range(protocol.n)]
    system = System(protocol)
    root = system.initial_configuration(inputs)
    pids = frozenset(range(protocol.n))
    one = ShardedExplorer(
        system, workers=1, max_configs=50_000, kernel="compiled"
    )
    sequential = one.explore(root, pids)
    one.close()
    sharded_explorer = ShardedExplorer(
        fresh_system(protocol), workers=workers, pool=worker_pool,
        max_configs=50_000, kernel="compiled",
    )
    assert sharded_explorer.kernel_fallback_reason == "sharded-workers"
    sharded = sharded_explorer.explore(root, pids)
    sharded_explorer.close()
    assert result_fingerprint(sharded) == result_fingerprint(sequential)


def test_strict_limit_error_is_byte_identical():
    """Same exception type, message bytes, and visited payload."""
    def overrun(kernel):
        system = System(CommitAdoptRounds(3))
        explorer = Explorer(
            system, max_configs=10, strict=True, kernel=kernel
        )
        root = system.initial_configuration([0, 1, 1])
        try:
            explorer.explore(root, frozenset(range(3)))
        except ExplorationLimitError as exc:
            return str(exc), exc.visited
        finally:
            explorer.close()
        raise AssertionError("limit did not trip")

    assert overrun("compiled") == overrun("interp")


def test_budget_exhaustion_tick_parity():
    """The kernel bills the budget at the same pop as the interpreter."""
    def exhaust(kernel):
        system = System(CommitAdoptRounds(3))
        budget = Budget(max_steps=7)
        explorer = Explorer(
            system, max_configs=50_000, strict=False,
            budget=budget, kernel=kernel,
        )
        root = system.initial_configuration([0, 1, 1])
        try:
            explorer.explore(root, frozenset(range(3)))
        except BudgetExhausted:
            pass
        finally:
            explorer.close()
        return budget.spent

    assert exhaust("compiled") == exhaust("interp")


def test_rounds_certificate_is_byte_identical():
    """The real protocol family: full adversary, serialized bytes."""
    interp = space_lower_bound(
        System(CommitAdoptRounds(3)), kernel="interp"
    )
    compiled = space_lower_bound(
        System(CommitAdoptRounds(3)), kernel="compiled"
    )
    assert to_json(compiled) == to_json(interp)


def test_rounds_certificate_byte_identical_under_forced_spill():
    interp = space_lower_bound(
        System(CommitAdoptRounds(3)), kernel="interp"
    )
    compiled = forced_spill(
        lambda: space_lower_bound(
            System(CommitAdoptRounds(3)), kernel="compiled"
        )
    )
    assert to_json(compiled) == to_json(interp)


def test_guarded_outcome_exit_codes_match():
    """The CLI exit-code contract is kernel-independent, bytes and all."""
    from repro.fuzz.oracle import EngineSpec, guarded_outcome

    protocol = CommitAdoptRounds(3)
    interp = guarded_outcome(protocol, EngineSpec("sequential"))
    compiled = guarded_outcome(
        protocol, EngineSpec("compiled", kernel="compiled")
    )
    assert compiled["status"] == interp["status"]
    assert compiled["exit_code"] == interp["exit_code"]
    assert json.dumps(compiled["payload"], sort_keys=True) == json.dumps(
        interp["payload"], sort_keys=True
    )


def test_compiled_engine_fingerprint_matches_sequential_leg():
    """The sixth oracle leg agrees with the baseline on a zoo-style
    specimen (the full differential runs in tests/test_fuzz.py and the
    zoo replay)."""
    from repro.fuzz.oracle import (
        DEFAULT_ENGINES,
        engine_fingerprint,
        fingerprint_bytes,
    )
    from repro.fuzz.generator import GeneratorConfig, generate_protocol
    import random

    compiled_spec = DEFAULT_ENGINES[-1]
    assert compiled_spec.name == "compiled"
    assert compiled_spec.kernel == "compiled"
    for seed in range(5):
        protocol = generate_protocol(
            random.Random(seed), config=GeneratorConfig(), name=f"k{seed}"
        )
        base = engine_fingerprint(protocol, DEFAULT_ENGINES[0])
        leg = engine_fingerprint(protocol, compiled_spec)
        assert fingerprint_bytes(leg) == fingerprint_bytes(base)


def test_metrics_parity_on_fixed_protocol():
    """Counter/gauge/histogram totals match the interpreter exactly
    (kernel.* instruments excluded -- they are the kernel's own)."""
    from repro.obs import MetricsRegistry, observe

    def observed(kernel):
        registry = MetricsRegistry()
        with observe(metrics=registry):
            explore_with(
                CommitAdoptRounds(3), kernel, inputs=[0, 1, 1], por=True
            )
        snapshot = registry.snapshot()
        snapshot["counters"] = {
            name: value
            for name, value in snapshot["counters"].items()
            if not name.startswith("kernel.")
        }
        snapshot["histograms"] = {
            name: body
            for name, body in snapshot["histograms"].items()
            if not name.startswith("kernel.")
        }
        return snapshot

    assert observed("compiled") == observed("interp")
