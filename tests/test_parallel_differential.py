"""Property-based differential tests: every engine, one truth.

Hypothesis generates small arbitrary protocol automata
(:class:`repro.model.table.TableProtocol` -- well-formed step machines,
not necessarily correct consensus protocols) and checks that the
sequential explorer, the sharded explorer and the cache-backed oracle
agree *exactly*: identical decision sets, identical witness schedules
that replay in a fresh sequential system, identical answers cold vs
warm.  Any divergence is a soundness bug in the parallel layer, found
here on a five-state automaton instead of inside a lemma driver.
"""

import tempfile

from hypothesis import HealthCheck, given, settings
import hypothesis.strategies as st

from repro.analysis.explorer import Explorer
from repro.core.valency import ValencyOracle
from repro.model.system import System
from repro.model.table import TableProtocol
from repro.parallel import ShardedExplorer

VALUES = (0, 1)
RESPONSES = (None, 0, 1)

DIFFERENTIAL = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def table_protocols(draw):
    n = draw(st.integers(min_value=2, max_value=3))
    num_states = draw(st.integers(min_value=2, max_value=4))
    registers = draw(st.integers(min_value=1, max_value=2))
    state = st.integers(min_value=0, max_value=num_states - 1)
    reg = st.integers(min_value=0, max_value=registers - 1)
    initial = {0: draw(state), 1: draw(state)}
    rules = {}
    decisions = {}
    for s in range(num_states):
        role = draw(st.sampled_from(["read", "write", "decide", "halt"]))
        if role == "decide":
            decisions[s] = draw(st.sampled_from(VALUES))
        elif role == "read":
            rules[s] = ("read", draw(reg))
        elif role == "write":
            rules[s] = ("write", draw(reg), draw(st.sampled_from(VALUES)))
    defaults = {s: draw(state) for s in rules}
    transitions = {}
    for s in rules:
        for response in RESPONSES:
            if draw(st.booleans()):
                transitions[(s, response)] = draw(state)
    return TableProtocol(
        n=n,
        registers=registers,
        initial=initial,
        rules=rules,
        transitions=transitions,
        defaults=defaults,
        decisions=decisions,
    )


def fresh_system(protocol):
    """Rebuild the protocol from its constructor recipe -- a genuinely
    fresh system, as a worker process or a later run would see it."""
    args, kwargs = protocol._ctor_args
    return System(type(protocol)(*args, **kwargs))


@given(protocol=table_protocols(), inputs_seed=st.integers(0, 7))
@DIFFERENTIAL
def test_sharded_exploration_is_bit_identical(
    protocol, inputs_seed, worker_pool, workers
):
    system = System(protocol)
    inputs = [(inputs_seed >> pid) & 1 for pid in range(protocol.n)]
    root = system.initial_configuration(inputs)
    pids = frozenset(range(protocol.n))
    seq = Explorer(system, max_configs=50_000).explore(root, pids)
    par = ShardedExplorer(
        system, workers=workers, pool=worker_pool, max_configs=50_000
    ).explore(root, pids)
    assert par.decided == seq.decided
    assert par.visited == seq.visited
    assert par.complete == seq.complete
    assert par.truncated == seq.truncated
    assert par.witnesses_replay(fresh_system(protocol))


@given(protocol=table_protocols(), value=st.sampled_from(VALUES))
@DIFFERENTIAL
def test_sharded_stop_when_is_bit_identical(
    protocol, value, worker_pool, workers
):
    system = System(protocol)
    root = system.initial_configuration([0, 1] + [0] * (protocol.n - 2))
    pids = frozenset(range(protocol.n))
    target = frozenset({value})
    seq = Explorer(system, max_configs=50_000).explore(
        root, pids, stop_when=target
    )
    par = ShardedExplorer(
        system, workers=workers, pool=worker_pool, max_configs=50_000
    ).explore(root, pids, stop_when=target)
    assert par.decided == seq.decided
    assert par.visited == seq.visited


@given(protocol=table_protocols())
@DIFFERENTIAL
def test_cache_cold_and_warm_answers_are_identical(protocol):
    def query_all(oracle):
        root = oracle.system.initial_configuration(
            [0, 1] + [0] * (oracle.system.protocol.n - 2)
        )
        subsets = [frozenset({pid}) for pid in range(protocol.n)]
        subsets.append(frozenset(range(protocol.n)))
        return {
            (pids, value): oracle.can_decide(root, pids, value)
            for pids in subsets
            for value in VALUES
        }

    with tempfile.TemporaryDirectory() as cache_dir:
        cold = ValencyOracle(
            System(protocol), cache_dir=cache_dir, max_configs=50_000
        )
        cold_answers = query_all(cold)
        cold.close()
        warm = ValencyOracle(
            fresh_system(protocol), cache_dir=cache_dir, max_configs=50_000
        )
        warm_answers = query_all(warm)
        assert warm_answers == cold_answers
        # Every search the cold run performed is a disk hit now.
        assert warm.stats["explorations"] == 0
        warm.close()
