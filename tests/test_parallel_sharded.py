"""The sharded explorer must be indistinguishable from the sequential one.

Equality here means *bit-identical* exploration results -- decision
sets, witness schedules, visited counts, completeness/truncation flags
-- plus the operational contracts around them: witnesses replay in a
fresh sequential system, certificates produced under ``workers > 1``
equal the sequential ones, and errors raised anywhere in the pipeline
keep their types, payloads and CLI exit codes.
"""

import pickle

import pytest

from repro.errors import (
    BudgetExhausted,
    ExplorationLimitError,
    ModelError,
    ViolationError,
)
from repro.analysis.explorer import Explorer
from repro.cli import main
from repro.core.theorem import space_lower_bound
from repro.model.system import System
from repro.parallel import ShardedExplorer
from repro.protocols.consensus import (
    CasConsensus,
    CommitAdoptRounds,
    TasConsensus,
)

BOUNDED = dict(max_configs=20_000, max_depth=12, strict=False)


def result_tuple(result):
    return (
        dict(result.decided),
        result.visited,
        result.complete,
        result.truncated,
    )


class TestShardedEqualsSequential:
    @pytest.mark.parametrize(
        "protocol, inputs, kwargs",
        [
            (CommitAdoptRounds(3), [0, 1, 0], BOUNDED),
            (CasConsensus(3), [0, 1, 1], dict(max_configs=50_000)),
            (TasConsensus(2), [0, 1], dict(max_configs=50_000)),
        ],
        ids=["rounds", "cas", "tas"],
    )
    def test_full_exploration_identical(
        self, protocol, inputs, kwargs, worker_pool, workers
    ):
        system = System(protocol)
        root = system.initial_configuration(inputs)
        pids = frozenset(range(protocol.n))
        seq = Explorer(system, **kwargs).explore(root, pids)
        par = ShardedExplorer(
            system, workers=workers, pool=worker_pool, **kwargs
        ).explore(root, pids)
        assert result_tuple(seq) == result_tuple(par)
        assert par.witnesses_replay(System(protocol))

    def test_stop_when_early_exit_identical(self, worker_pool, workers):
        system = System(CommitAdoptRounds(3))
        root = system.initial_configuration([0, 1, 0])
        pids = frozenset({0, 1, 2})
        for target in (frozenset({0}), frozenset({1}), frozenset({0, 1})):
            seq = Explorer(system, **BOUNDED).explore(
                root, pids, stop_when=target
            )
            par = ShardedExplorer(
                system, workers=workers, pool=worker_pool, **BOUNDED
            ).explore(root, pids, stop_when=target)
            assert result_tuple(seq) == result_tuple(par)

    def test_subset_queries_identical(self, worker_pool, workers):
        system = System(CasConsensus(3))
        root = system.initial_configuration([0, 1, 1])
        sharded = ShardedExplorer(
            system, workers=workers, pool=worker_pool, max_configs=50_000
        )
        sequential = Explorer(system, max_configs=50_000)
        for pids in [frozenset({0}), frozenset({1, 2}), frozenset({0, 2})]:
            seq = sequential.explore(root, pids)
            par = sharded.explore(root, pids)
            assert result_tuple(seq) == result_tuple(par)

    def test_workers_one_is_plain_sequential(self):
        system = System(TasConsensus(2))
        root = system.initial_configuration([0, 1])
        solo = ShardedExplorer(system, workers=1, max_configs=50_000)
        seq = Explorer(system, max_configs=50_000)
        pids = frozenset({0, 1})
        assert result_tuple(solo.explore(root, pids)) == result_tuple(
            seq.explore(root, pids)
        )

    def test_unpicklable_system_rejected_loudly(self):
        system = System(TasConsensus(2))
        system.tape = lambda pid, index: 0  # closures cannot cross spawn
        with pytest.raises(ModelError, match="not picklable"):
            ShardedExplorer(system, workers=2)


class TestWitnessReplayRegression:
    # Pinned: BFS with sorted-pid child order always discovers these
    # exact lexicographically-least witness schedules for rounds:3 under
    # the bounded budgets -- any engine change that reorders discovery
    # breaks this test before it breaks a proof.
    PINNED = {0: (0,) * 8, 1: (1,) * 8}

    def test_sharded_witnesses_are_the_pinned_schedules(
        self, worker_pool, workers
    ):
        system = System(CommitAdoptRounds(3))
        root = system.initial_configuration([0, 1, 0])
        par = ShardedExplorer(
            system, workers=workers, pool=worker_pool, **BOUNDED
        ).explore(root, frozenset({0, 1, 2}))
        assert par.decided == self.PINNED

    def test_pinned_schedules_replay_in_a_fresh_system(self):
        fresh = System(CommitAdoptRounds(3))
        root = fresh.initial_configuration([0, 1, 0])
        for value, schedule in self.PINNED.items():
            final, _ = fresh.run(root, schedule)
            assert value in fresh.decided_values(final)


class TestWorkerEndpoint:
    """``expand_batch`` is a pure function -- exercised in-process here
    (spawned children run the same code but escape coverage tracing)."""

    def test_expand_batch_events_match_sequential_stepping(self):
        from repro.parallel.worker import expand_batch

        system = System(TasConsensus(2))
        root = system.initial_configuration([0, 1])
        pids = (0, 1)
        blob = pickle.dumps(system)
        [(index, events)] = expand_batch(
            (blob, pids, ((4, root, None),), False)
        )
        assert index == 4
        assert [pid for pid, *_ in events] == [0, 1]
        for pid, op, succ, succ_key, decided in events:
            assert op == system.poised(root, pid)
            expected, _ = system.step(root, pid)
            assert succ == expected
            assert succ_key == system.protocol.canonical_query_key(
                succ, frozenset(pids)
            )
            assert decided == tuple(system.decided_values(succ))

    def test_expand_batch_drops_intra_batch_duplicates(self):
        from repro.parallel.worker import expand_batch

        system = System(TasConsensus(2))
        root = system.initial_configuration([0, 1])
        blob = pickle.dumps(system)
        batch = expand_batch(
            (blob, (0, 1), ((0, root, None), (1, root, None)), False)
        )
        first_keys = {key for _, _, _, key, _ in batch[0][1]}
        second_keys = {key for _, _, _, key, _ in batch[1][1]}
        assert not (first_keys & second_keys)

    def test_system_blob_memo_is_bounded(self):
        from repro.parallel import worker

        worker._SYSTEMS.clear()
        for n in range(2, 2 + worker._MAX_CACHED_SYSTEMS + 1):
            worker.system_from_blob(pickle.dumps(System(CasConsensus(n))))
        assert len(worker._SYSTEMS) <= worker._MAX_CACHED_SYSTEMS


class TestExplorerConveniences:
    def test_reachable_count_matches_sequential(self, worker_pool, workers):
        system = System(TasConsensus(2))
        root = system.initial_configuration([0, 1])
        pids = frozenset({0, 1})
        sharded = ShardedExplorer(
            system, workers=workers, pool=worker_pool, max_configs=50_000
        )
        sequential = Explorer(system, max_configs=50_000)
        assert sharded.reachable_count(root, pids) == (
            sequential.reachable_count(root, pids)
        )

    def test_iter_reachable_delegates_to_sequential(self):
        system = System(TasConsensus(2))
        root = system.initial_configuration([0, 1])
        pids = frozenset({0, 1})
        sharded = ShardedExplorer(system, workers=1, max_configs=50_000)
        sequential = Explorer(system, max_configs=50_000)
        assert [
            (config, path) for config, path in sharded.iter_reachable(
                root, pids
            )
        ] == list(sequential.iter_reachable(root, pids))


def _raise_in_worker(kind):
    """Module-level so spawned workers can import and run it."""
    if kind == "budget":
        raise BudgetExhausted(
            "spent inside a worker", spent_steps=7, elapsed=1.5
        )
    if kind == "violation":
        raise ViolationError("found inside a worker", witness=(0, 1, 1, 0))
    raise ExplorationLimitError("overran inside a worker", visited=123)


class TestErrorMarshalling:
    def test_errors_pickle_losslessly(self):
        budget = BudgetExhausted("b", spent_steps=9, elapsed=2.5)
        budget2 = pickle.loads(pickle.dumps(budget))
        assert (budget2.spent_steps, budget2.elapsed) == (9, 2.5)
        violation = pickle.loads(
            pickle.dumps(ViolationError("v", witness=(1, 0)))
        )
        assert violation.witness == (1, 0)
        limit = pickle.loads(
            pickle.dumps(ExplorationLimitError("l", visited=42))
        )
        assert limit.visited == 42

    @pytest.mark.parametrize("kind", ["budget", "violation", "limit"])
    def test_errors_cross_the_process_boundary_intact(
        self, worker_pool, kind
    ):
        expected = {
            "budget": BudgetExhausted,
            "violation": ViolationError,
            "limit": ExplorationLimitError,
        }[kind]
        with pytest.raises(expected) as excinfo:
            worker_pool.map(_raise_in_worker, [kind])
        exc = excinfo.value
        if kind == "budget":
            assert (exc.spent_steps, exc.elapsed) == (7, 1.5)
        elif kind == "violation":
            assert exc.witness == (0, 1, 1, 0)
        else:
            assert exc.visited == 123


class TestCertificateEquality:
    def test_sequential_and_parallel_certificates_equal(self, workers):
        system = System(CommitAdoptRounds(3))
        seq = space_lower_bound(
            system, strict=False, max_configs=20_000, max_depth=40
        )
        par = space_lower_bound(
            System(CommitAdoptRounds(3)),
            strict=False,
            max_configs=20_000,
            max_depth=40,
            workers=workers,
        )
        assert seq == par
        par.validate(System(CommitAdoptRounds(3)))


class TestCliExitCodesWithWorkers:
    def test_budget_exhaustion_keeps_exit_code_3(self, capsys):
        code = main(
            ["adversary", "rounds:3", "--workers", "2", "--budget", "5"]
        )
        assert code == 3
        assert "partial progress" in capsys.readouterr().out

    def test_violation_keeps_exit_code_2(self, capsys):
        code = main(["adversary", "split-brain:3", "--workers", "2"])
        assert code == 2
        out = capsys.readouterr().out
        assert "violation" in out
        assert "witness schedule" in out

    def test_certificate_with_workers_exits_0(self, capsys, tmp_path):
        out_path = tmp_path / "cert.json"
        code = main(
            ["adversary", "rounds:3", "--workers", "2", "--out",
             str(out_path)]
        )
        assert code == 0
        assert out_path.exists()
        assert main(["validate", str(out_path), "rounds:3"]) == 0
