"""Property-based differentials: the incremental engine changes nothing.

Hypothesis generates small arbitrary protocol automata (the same
strategy as tests/test_parallel_differential.py) and checks that an
incremental oracle -- interned memo tables, frontier reuse -- returns
*exactly* what a cold oracle returns: identical answers, identical
witness schedules (replayed in a fresh sequential system), identical
behaviour under sharded workers and partial-order reduction.  Any
divergence is a soundness bug in the memo layer, found here on a
five-state automaton instead of inside a lemma driver.
"""

from hypothesis import given
import hypothesis.strategies as st

from repro.core.valency import ValencyOracle
from repro.model.system import System
from repro.parallel import ShardedExplorer

from tests.test_parallel_differential import (
    DIFFERENTIAL,
    VALUES,
    fresh_system,
    table_protocols,
)


def query_all(oracle):
    """The full query battery: every singleton plus the whole set, both
    values, with witnesses for every positive answer."""
    n = oracle.system.protocol.n
    root = oracle.system.initial_configuration([0, 1] + [0] * (n - 2))
    subsets = [frozenset({pid}) for pid in range(n)]
    subsets.append(frozenset(range(n)))
    answers = {}
    witnesses = {}
    for pids in subsets:
        for value in VALUES:
            answers[(pids, value)] = oracle.can_decide(root, pids, value)
            if answers[(pids, value)]:
                witnesses[(pids, value)] = oracle.witness(root, pids, value)
    return answers, witnesses


@given(protocol=table_protocols())
@DIFFERENTIAL
def test_incremental_oracle_equals_cold_oracle(protocol):
    cold = ValencyOracle(
        System(protocol), max_configs=50_000, incremental=False
    )
    cold_answers, cold_witnesses = query_all(cold)
    cold.close()
    incremental = ValencyOracle(
        fresh_system(protocol), max_configs=50_000, incremental=True
    )
    incr_answers, incr_witnesses = query_all(incremental)
    assert incr_answers == cold_answers
    assert incr_witnesses == cold_witnesses
    # Witnesses replay in a genuinely fresh system.
    for (pids, value), schedule in incr_witnesses.items():
        system = fresh_system(protocol)
        cursor = system.initial_configuration(
            [0, 1] + [0] * (protocol.n - 2)
        )
        for pid in schedule:
            cursor, _ = system.step(cursor, pid)
        assert value in system.decided_values(cursor) or any(
            system.decision(cursor, pid) == value for pid in pids
        )
    incremental.close()


@given(protocol=table_protocols(), inputs_seed=st.integers(0, 7))
@DIFFERENTIAL
def test_incremental_sharded_matches_sequential(
    protocol, inputs_seed, worker_pool, workers
):
    from repro.analysis.explorer import Explorer
    from repro.core.incremental import IncrementalEngine

    system = System(protocol)
    inputs = [(inputs_seed >> pid) & 1 for pid in range(protocol.n)]
    root = system.initial_configuration(inputs)
    pids = frozenset(range(protocol.n))
    seq = Explorer(
        system, max_configs=50_000, engine=IncrementalEngine(system)
    ).explore(root, pids)
    par = ShardedExplorer(
        system,
        workers=workers,
        pool=worker_pool,
        max_configs=50_000,
        engine=IncrementalEngine(system),
    ).explore(root, pids)
    assert par.decided == seq.decided
    assert par.visited == seq.visited
    assert par.complete == seq.complete
    assert par.truncated == seq.truncated
    assert par.witnesses_replay(fresh_system(protocol))


@given(protocol=table_protocols())
@DIFFERENTIAL
def test_incremental_with_por_equals_cold_without(protocol):
    cold = ValencyOracle(
        System(protocol), max_configs=50_000, incremental=False, por=False
    )
    cold_answers, cold_witnesses = query_all(cold)
    cold.close()
    tuned = ValencyOracle(
        fresh_system(protocol), max_configs=50_000, incremental=True, por=True
    )
    tuned_answers, tuned_witnesses = query_all(tuned)
    assert tuned_answers == cold_answers
    assert tuned_witnesses == cold_witnesses
    tuned.close()
