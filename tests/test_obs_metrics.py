"""Unit tests for the observability primitives: instruments, registry
snapshot/merge determinism, the ambient observation stack, and the
tracer/sink plumbing (including the flushed-journal-on-exception
guarantee the CLI exit codes 2/3 rely on)."""

import json

import pytest

from repro.errors import JournalError
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    NullRegistry,
    Tracer,
    get_metrics,
    get_tracer,
    jsonable,
    observe,
    parse_journal,
    unobserved,
)


# -- instruments -------------------------------------------------------------


def test_counter_accumulates():
    counter = Counter()
    counter.inc()
    counter.inc(41)
    assert counter.value == 42


def test_gauge_set_and_set_max():
    gauge = Gauge()
    assert gauge.value is None
    gauge.set_max(3)
    gauge.set_max(1)
    assert gauge.value == 3
    gauge.set(1)
    assert gauge.value == 1


def test_histogram_buckets_and_moments():
    hist = Histogram(edges=(1, 10, 100))
    for value in (0, 1, 5, 50, 500):
        hist.observe(value)
    assert hist.counts == [2, 1, 1, 1]  # <=1, <=10, <=100, overflow
    assert hist.count == 5
    assert hist.sum == 556
    assert hist.min == 0
    assert hist.max == 500


# -- registry ----------------------------------------------------------------


def test_registry_create_or_get_is_idempotent():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("g") is registry.gauge("g")
    assert registry.histogram("h") is registry.histogram("h")


def test_histogram_edge_mismatch_rejected():
    registry = MetricsRegistry()
    registry.histogram("h", edges=(1, 2))
    with pytest.raises(ValueError):
        registry.histogram("h", edges=(1, 2, 3))


def test_snapshot_is_json_safe_and_sorted():
    registry = MetricsRegistry()
    registry.counter("z").inc(2)
    registry.counter("a").inc(1)
    registry.gauge("g").set_max(7)
    registry.histogram("h", edges=(1, 2)).observe(5)
    snap = registry.snapshot()
    assert json.loads(json.dumps(snap)) == snap
    assert list(snap["counters"]) == ["a", "z"]
    assert snap["histograms"]["h"]["counts"] == [0, 0, 1]


def test_merge_is_commutative():
    shards = []
    for base in (1, 10, 100):
        registry = MetricsRegistry()
        registry.counter("c").inc(base)
        registry.gauge("g").set_max(base)
        hist = registry.histogram("h", edges=(5, 50))
        hist.observe(base)
        shards.append(registry.snapshot())

    def merged(order):
        registry = MetricsRegistry()
        for index in order:
            registry.merge(shards[index])
        return registry.snapshot()

    forward = merged([0, 1, 2])
    backward = merged([2, 1, 0])
    assert forward == backward
    assert forward["counters"]["c"] == 111
    assert forward["gauges"]["g"] == 100
    assert forward["histograms"]["h"]["counts"] == [1, 1, 1]


def test_merge_matches_sequential_accumulation():
    sequential = MetricsRegistry()
    shard = MetricsRegistry()
    for registry, values in ((sequential, (1, 2, 3, 4)), (shard, (3, 4))):
        for value in values:
            registry.counter("c").inc(value)
            registry.histogram("h", edges=(2,)).observe(value)
    partial = MetricsRegistry()
    for value in (1, 2):
        partial.counter("c").inc(value)
        partial.histogram("h", edges=(2,)).observe(value)
    partial.merge(shard.snapshot())
    assert partial.snapshot() == sequential.snapshot()


def test_null_registry_discards_everything():
    registry = NullRegistry()
    registry.counter("c").inc(5)
    registry.gauge("g").set_max(5)
    registry.histogram("h").observe(5)
    assert registry.snapshot() == {
        "counters": {},
        "gauges": {},
        "histograms": {},
    }
    assert not registry.enabled


# -- ambient observation stack -----------------------------------------------


def test_observe_installs_and_restores():
    default_metrics = get_metrics()
    fresh = MetricsRegistry()
    with observe(metrics=fresh):
        assert get_metrics() is fresh
        inner = MetricsRegistry()
        with observe(metrics=inner):
            assert get_metrics() is inner
        assert get_metrics() is fresh
    assert get_metrics() is default_metrics


def test_unobserved_installs_null_registry():
    with unobserved():
        assert not get_metrics().enabled
        assert not get_tracer().enabled
        get_metrics().counter("c").inc()  # must be a no-op, not an error


def test_default_tracer_is_disabled():
    assert not get_tracer().enabled


# -- tracer ------------------------------------------------------------------


def test_spans_nest_and_events_attach_to_parents():
    sink = MemorySink()
    tracer = Tracer(sink, run_id="test-run", clock=lambda: 0.0)
    with tracer.span("outer", a=1):
        tracer.event("fact", b=2)
        with tracer.span("inner"):
            pass
    kinds = [(r["type"], r["name"]) for r in sink.records]
    assert kinds == [
        ("span_start", "outer"),
        ("event", "fact"),
        ("span_start", "inner"),
        ("span_end", "inner"),
        ("span_end", "outer"),
    ]
    outer_id = sink.records[0]["id"]
    assert sink.records[0]["parent"] is None
    assert sink.records[1]["parent"] == outer_id
    assert sink.records[2]["parent"] == outer_id
    assert sink.records[0]["data"] == {"a": 1}
    assert all(r["run"] == "test-run" for r in sink.records)


def test_span_records_error_status_and_reraises():
    sink = MemorySink()
    tracer = Tracer(sink)
    with pytest.raises(RuntimeError):
        with tracer.span("doomed"):
            raise RuntimeError("boom")
    end = sink.records[-1]
    assert end["type"] == "span_end"
    assert end["status"] == "error"
    assert "boom" in end["error"]


def test_emit_metrics_dumps_snapshot():
    sink = MemorySink()
    tracer = Tracer(sink)
    registry = MetricsRegistry()
    registry.counter("c").inc(3)
    tracer.emit_metrics(registry)
    record = sink.records[-1]
    assert record["type"] == "metrics"
    assert record["data"]["counters"] == {"c": 3}


def test_jsonable_coerces_exotic_values():
    assert jsonable({1: {2, 3}, "t": (4, frozenset())}) == {
        "1": [2, 3],
        "t": [4, []],
    }
    assert isinstance(jsonable(object()), str)


# -- sinks -------------------------------------------------------------------


def test_jsonl_sink_flushes_complete_lines_on_exception(tmp_path):
    path = tmp_path / "journal.jsonl"
    tracer = Tracer(JsonlSink(path))
    with pytest.raises(ValueError):
        with tracer.span("outer"):
            tracer.event("progress", step=1)
            raise ValueError("unwind")
    # No close() ran -- the journal must still be complete, valid JSONL.
    records = parse_journal(path)
    assert [r["type"] for r in records] == [
        "span_start",
        "event",
        "span_end",
    ]
    assert records[-1]["status"] == "error"
    tracer.close()


def test_jsonl_sink_rejects_emit_after_close(tmp_path):
    sink = JsonlSink(tmp_path / "journal.jsonl")
    sink.close()
    sink.close()  # idempotent
    with pytest.raises(JournalError):
        sink.emit({"v": 1})


def test_parse_journal_rejects_truncated_line(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"v": 1, "t": 0, "run": "r", "type": "even', "utf-8")
    with pytest.raises(JournalError):
        parse_journal(path)
