"""CLI observability surface: --trace-out/--metrics-out on the run
commands, and the stats/trace renderers against real journals.

The load-bearing property: journals are complete, parseable JSONL for
*every* exit code -- 0 (certificate), 2 (violation) and 3 (budget) --
because the sink flushes per record and ``main`` finalises the journal
before mapping exceptions to exit codes.
"""

import json

from repro.cli import main
from repro.core.serialize import certificate_from_json
from repro.faults import run_adversary_guarded
from repro.model.system import System
from repro.obs import parse_journal
from repro.protocols.consensus import CommitAdoptRounds


def outcome_statuses(records):
    return [
        record["data"]["status"]
        for record in records
        if record["type"] == "event"
        and record["name"] == "adversary.outcome"
    ]


def test_adversary_success_journal_and_metrics(tmp_path, capsys):
    journal = tmp_path / "run.jsonl"
    metrics = tmp_path / "metrics.json"
    rc = main([
        "adversary", "rounds:3",
        "--trace-out", str(journal),
        "--metrics-out", str(metrics),
    ])
    assert rc == 0
    records = parse_journal(journal)
    assert records[-1]["type"] == "metrics"
    assert outcome_statuses(records) == ["certificate"]

    snapshot = json.loads(metrics.read_text("utf-8"))
    assert snapshot["counters"]["oracle.queries"] > 0
    assert snapshot["gauges"]["construction.covered_registers"] == 2
    # The journal's metrics record and the metrics file agree.
    assert records[-1]["data"]["counters"] == snapshot["counters"]


def test_adversary_violation_exit_2_flushed_journal(tmp_path, capsys):
    journal = tmp_path / "violation.jsonl"
    rc = main([
        "adversary", "split-brain:3", "--trace-out", str(journal),
    ])
    assert rc == 2
    records = parse_journal(journal)  # complete despite the violation
    assert records[-1]["type"] == "metrics"
    assert outcome_statuses(records) == ["violation"]


def test_adversary_budget_exit_3_flushed_journal(tmp_path, capsys):
    journal = tmp_path / "budget.jsonl"
    rc = main([
        "adversary", "rounds:3", "--budget", "5",
        "--trace-out", str(journal),
    ])
    assert rc == 3
    records = parse_journal(journal)  # complete despite the exhaustion
    assert records[-1]["type"] == "metrics"
    assert outcome_statuses(records) == ["budget"]
    events = [r["name"] for r in records if r["type"] == "event"]
    assert "budget.exhausted" in events


def test_check_supports_trace_out(tmp_path, capsys):
    journal = tmp_path / "check.jsonl"
    rc = main(["check", "tas:2", "--trace-out", str(journal)])
    assert rc == 0
    records = parse_journal(journal)
    assert records[-1]["type"] == "metrics"


def test_stats_matches_certificate(tmp_path, capsys):
    """Acceptance: a traced Theorem 1 run's stats agree with its
    certificate."""
    journal = tmp_path / "run.jsonl"
    cert_path = tmp_path / "cert.json"
    rc = main([
        "adversary", "rounds:3",
        "--trace-out", str(journal),
        "--out", str(cert_path),
    ])
    assert rc == 0
    capsys.readouterr()

    certificate = certificate_from_json(cert_path.read_text("utf-8"))
    outcome = run_adversary_guarded(System(CommitAdoptRounds(3)))
    assert outcome.certificate.registers == certificate.registers

    assert main(["stats", str(journal)]) == 0
    out = capsys.readouterr().out
    assert "covered registers" in out
    # The derived row equals the certificate's register count.
    line = next(
        l for l in out.splitlines() if l.startswith("covered registers")
    )
    assert line.split()[-1] == str(len(certificate.registers))
    assert "oracle memo hit rate" in out
    assert "frontier peak" in out


def test_stats_without_metrics_record(tmp_path, capsys):
    journal = tmp_path / "empty.jsonl"
    journal.write_text("", "utf-8")
    assert main(["stats", str(journal)]) == 1
    assert "no metrics record" in capsys.readouterr().out


def test_stats_with_empty_metrics_prints_na_rates(tmp_path, capsys):
    """Regression: a journal whose run performed zero valency queries
    (all rate denominators zero) must render "n/a" rows, not divide."""
    import json

    journal = tmp_path / "idle.jsonl"
    record = {
        "v": 1,
        "t": 0.0,
        "run": "idle",
        "type": "metrics",
        "name": "metrics",
        "data": {"counters": {}, "gauges": {}, "histograms": {}},
    }
    journal.write_text(json.dumps(record) + "\n", "utf-8")
    assert main(["stats", str(journal)]) == 0
    out = capsys.readouterr().out
    for row in (
        "oracle memo hit rate",
        "valency-cache hit rate",
        "incremental seed rate",
        "intern hit rate",
        "frontier peak",
    ):
        line = next(l for l in out.splitlines() if l.startswith(row))
        assert line.rstrip().endswith("n/a"), line


def test_stats_resilience_section_na_on_empty_journal(tmp_path, capsys):
    """S6: the resilience table renders for a journal from a run that
    never touched the supervised plane -- all zeros, and the retry rate
    guarded to "n/a" rather than dividing by zero dispatches."""
    journal = tmp_path / "idle.jsonl"
    record = {
        "v": 1,
        "t": 0.0,
        "run": "idle",
        "type": "metrics",
        "name": "metrics",
        "data": {"counters": {}, "gauges": {}, "histograms": {}},
    }
    journal.write_text(json.dumps(record) + "\n", "utf-8")
    assert main(["stats", str(journal)]) == 0
    out = capsys.readouterr().out
    assert "resilience" in out
    for row in (
        "worker restarts",
        "tasks retried",
        "tasks quarantined",
        "degraded to sequential",
        "checkpoint records",
        "level snapshots",
    ):
        line = next(l for l in out.splitlines() if l.startswith(row))
        assert line.split()[-1] == "0", line
    retry = next(
        l for l in out.splitlines() if l.startswith("task retry rate")
    )
    assert retry.rstrip().endswith("n/a"), retry


def test_stats_resilience_section_counts_supervised_run(tmp_path, capsys):
    """A sharded traced run dispatches through the supervisor, so its
    journal's resilience table shows a real retry rate (0.0%, not n/a)
    and zero restarts -- the undisturbed baseline."""
    journal = tmp_path / "sharded.jsonl"
    rc = main([
        "adversary", "rounds:3", "--workers", "2",
        "--trace-out", str(journal),
    ])
    assert rc == 0
    capsys.readouterr()
    assert main(["stats", str(journal)]) == 0
    out = capsys.readouterr().out
    restarts = next(
        l for l in out.splitlines() if l.startswith("worker restarts")
    )
    assert restarts.split()[-1] == "0"
    retry = next(
        l for l in out.splitlines() if l.startswith("task retry rate")
    )
    assert not retry.rstrip().endswith("n/a"), retry


def test_trace_filters_by_name(tmp_path, capsys):
    journal = tmp_path / "run.jsonl"
    assert main(
        ["adversary", "rounds:3", "--trace-out", str(journal)]
    ) == 0
    capsys.readouterr()
    assert main(
        ["trace", str(journal), "--name", "adversary.outcome"]
    ) == 0
    out = capsys.readouterr().out
    assert "adversary.outcome" in out
    assert "lemma1" not in out


def test_untraced_runs_write_no_files(tmp_path, capsys):
    rc = main(["adversary", "tas:2"])
    assert rc == 0
    assert list(tmp_path.iterdir()) == []


# -- journals from a newer writer ---------------------------------------------

def _future_journal(tmp_path, version=99):
    path = tmp_path / "future.jsonl"
    record = {
        "v": version, "t": 0.0, "run": "r", "type": "event",
        "name": "adversary.outcome", "parent": None, "data": {},
    }
    path.write_text(json.dumps(record) + "\n", encoding="utf-8")
    return path


def test_stats_on_newer_schema_is_one_line_and_na(tmp_path, capsys):
    assert main(["stats", str(_future_journal(tmp_path))]) == 1
    out = capsys.readouterr().out
    assert "journal schema v99 > supported v1" in out.splitlines()[0]
    assert "n/a" in out
    # Not misdiagnosed as corruption or a torn tail.
    assert "torn" not in out
    assert "error:" not in out


def test_trace_on_newer_schema_is_one_line_and_na(tmp_path, capsys):
    assert main(["trace", str(_future_journal(tmp_path))]) == 1
    out = capsys.readouterr().out
    assert "journal schema v2 > supported v1" not in out  # exact version
    assert "journal schema v99 > supported v1" in out.splitlines()[0]
    assert "n/a" in out


def test_newer_schema_mid_file_is_still_the_version_verdict(
    tmp_path, capsys
):
    path = tmp_path / "mixed.jsonl"
    good = {
        "v": 1, "t": 0.0, "run": "r", "type": "event",
        "name": "x", "parent": None, "data": {},
    }
    future = dict(good, v=2)
    path.write_text(
        json.dumps(good) + "\n" + json.dumps(future) + "\n",
        encoding="utf-8",
    )
    assert main(["trace", str(path)]) == 1
    out = capsys.readouterr().out
    assert "journal schema v2 > supported v1 (line 2)" in out


def test_schema_too_new_carries_both_versions():
    from repro.obs import SchemaTooNew, validate_record

    import pytest

    with pytest.raises(SchemaTooNew) as excinfo:
        validate_record({"v": 7, "type": "event"}, line=3)
    assert excinfo.value.found == 7
    assert excinfo.value.supported == 1
    # Survives the worker-boundary pickle round trip like every error.
    import pickle

    clone = pickle.loads(pickle.dumps(excinfo.value))
    assert (clone.found, clone.supported) == (7, 1)
