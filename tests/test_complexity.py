"""Tests for worst-case step complexity and the valency landscape."""

import pytest

from repro.errors import AdversaryError
from repro.analysis.complexity import valency_by_depth, worst_case_steps
from repro.model.system import System
from repro.protocols.consensus import (
    AdoptCommit,
    CasConsensus,
    CommitAdoptRounds,
    TasConsensus,
)


class TestWorstCaseSteps:
    def test_cas_decides_in_one_step(self):
        system = System(CasConsensus(3))
        for pid in range(3):
            assert worst_case_steps(system, [0, 1, 0], pid) == 1

    def test_tas_loser_pays_more(self):
        system = System(TasConsensus())
        costs = [worst_case_steps(system, [0, 1], pid) for pid in (0, 1)]
        # write + T&S (+ read of the winner's value when losing).
        assert costs == [3, 3]

    def test_adopt_commit_cost_is_2n_plus_2(self):
        for n in (2, 3):
            system = System(AdoptCommit(n))
            assert worst_case_steps(system, [0] + [1] * (n - 1), 0) == 2 * n + 2

    def test_not_wait_free_detected(self):
        system = System(CommitAdoptRounds(2))
        with pytest.raises(AdversaryError):
            worst_case_steps(system, [0, 1], 0, max_configs=50_000)

    def test_exceeds_jtt_time_floor(self):
        # JTT: deterministic wait-free one-shot agreement objects pay at
        # least n-1 steps; adopt-commit's 2n+2 respects the floor.
        # (n=4's reachable graph already exceeds the exhaustive budget,
        # so the sweep stops at 3.)
        for n in (2, 3):
            system = System(AdoptCommit(n))
            cost = worst_case_steps(system, [0] * n, 0)
            assert cost == 2 * n + 2 >= n - 1


class TestValencyByDepth:
    def test_cas_bivalence_dies_at_first_operation(self):
        system = System(CasConsensus(2))
        rows = valency_by_depth(system, [0, 1], max_depth=4)
        depth0 = rows[0]
        assert depth0 == (0, 1, 1)  # the initial configuration is bivalent
        # After depth 1 every configuration is univalent: the first CAS
        # decided the object.
        for depth, _count, bivalent in rows[1:]:
            assert bivalent == 0, f"bivalent config at depth {depth}"

    def test_adopt_commit_bivalence_persists_through_phase_one(self):
        from repro.protocols.consensus import ADOPT, COMMIT

        system = System(AdoptCommit(2))
        outputs = [
            (verdict, value)
            for verdict in (COMMIT, ADOPT)
            for value in (0, 1)
        ]
        rows = valency_by_depth(
            system, [0, 1], max_depth=12, values=outputs
        )
        assert rows[0][2] == 1
        # Adopt-commit is not consensus: multiple outputs stay reachable
        # deep into the execution (processes can commit 0 or adopt 1
        # depending on the schedule).
        assert any(bivalent > 0 for _d, _c, bivalent in rows[1:4])

    def test_rows_cover_all_depths_until_termination(self):
        system = System(CasConsensus(2))
        rows = valency_by_depth(system, [1, 1], max_depth=50)
        depths = [depth for depth, _c, _b in rows]
        assert depths == list(range(len(rows)))
        # The walk ends: the protocol terminates within a few steps.
        assert len(rows) < 10
