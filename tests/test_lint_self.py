"""Repository self-lint: the live package passes, seeded defects don't.

The checkers are AST-based and take a root directory, so these tests
build small fake package trees under tmp_path with one invariant broken
at a time -- the real tree is never touched.
"""

import pytest

from repro.errors import LintError
from repro.lint import (
    check_determinism,
    check_kernel_hot_path,
    check_picklable_errors,
    check_trace_schema,
    lint_repository,
)
from repro.lint.selfcheck import (
    EXPECTED_REQUIRED_KEYS,
    EXPECTED_SCHEMA_VERSION,
    PRAGMA,
)

GOOD_TRACE = (
    f"SCHEMA_VERSION = {EXPECTED_SCHEMA_VERSION}\n"
    f"REQUIRED_KEYS = {EXPECTED_REQUIRED_KEYS!r}\n"
)


def seed_tree(
    root,
    core="",
    model="",
    trace=GOOD_TRACE,
    extra=None,
):
    """A minimal tree shaped like the repro package."""
    for package, source in (("core", core), ("model", model)):
        package_dir = root / package
        package_dir.mkdir(parents=True)
        (package_dir / "mod.py").write_text(source, encoding="utf-8")
    obs = root / "obs"
    obs.mkdir()
    (obs / "trace.py").write_text(trace, encoding="utf-8")
    for name, source in (extra or {}).items():
        (root / name).write_text(source, encoding="utf-8")
    return root


class TestLivePackage:
    def test_the_repository_lints_clean(self):
        report = lint_repository()
        assert len(report) == 0, report.to_json()


class TestDeterminism:
    def test_random_import_in_proof_path_is_flagged(self, tmp_path):
        root = seed_tree(tmp_path, core="import random\n")
        report = check_determinism(root)
        [diag] = report.by_code("nondeterministic-import")
        assert diag.severity == "error"
        assert diag.path.endswith("core/mod.py")
        assert diag.line == 1

    def test_time_from_import_is_flagged(self, tmp_path):
        root = seed_tree(tmp_path, model="from time import sleep\n")
        assert check_determinism(root).by_code("nondeterministic-import")

    def test_pragma_whitelists_the_line(self, tmp_path):
        root = seed_tree(
            tmp_path,
            model=f"import random  # {PRAGMA} (caller provides the rng)\n",
        )
        assert len(check_determinism(root)) == 0

    def test_imports_outside_proof_paths_are_ignored(self, tmp_path):
        root = seed_tree(
            tmp_path, extra={"bench.py": "import random\nimport time\n"}
        )
        assert len(check_determinism(root)) == 0

    def test_missing_proof_path_is_a_lint_error(self, tmp_path):
        (tmp_path / "core").mkdir()
        with pytest.raises(LintError):
            check_determinism(tmp_path)

    def test_syntax_error_is_a_lint_error_not_a_crash(self, tmp_path):
        root = seed_tree(tmp_path, core="def broken(:\n")
        with pytest.raises(LintError):
            check_determinism(root)


PAYLOAD_ERROR = """
class WitnessError(Exception):
    def __init__(self, message, witness):
        super().__init__(message)
        self.witness = witness
"""

PAYLOAD_ERROR_WITH_REDUCE = PAYLOAD_ERROR + """
    def __reduce__(self):
        return (type(self), (self.args[0], self.witness))
"""


class TestPicklableErrors:
    def test_payload_without_reduce_is_flagged(self, tmp_path):
        root = seed_tree(tmp_path, extra={"errs.py": PAYLOAD_ERROR})
        [diag] = check_picklable_errors(root).by_code("unpicklable-error")
        assert "WitnessError" in diag.message

    def test_reduce_silences_the_finding(self, tmp_path):
        root = seed_tree(
            tmp_path, extra={"errs.py": PAYLOAD_ERROR_WITH_REDUCE}
        )
        assert len(check_picklable_errors(root)) == 0

    def test_message_only_errors_are_fine(self, tmp_path):
        source = "class PlainError(Exception):\n    pass\n"
        root = seed_tree(tmp_path, extra={"errs.py": source})
        assert len(check_picklable_errors(root)) == 0


class TestTraceSchema:
    def test_version_drift_is_flagged(self, tmp_path):
        drifted = GOOD_TRACE.replace(
            f"SCHEMA_VERSION = {EXPECTED_SCHEMA_VERSION}", "SCHEMA_VERSION = 99"
        )
        root = seed_tree(tmp_path, trace=drifted)
        assert check_trace_schema(root).by_code("schema-drift")

    def test_key_drift_is_flagged(self, tmp_path):
        drifted = GOOD_TRACE.replace("span_start", "span_begin")
        root = seed_tree(tmp_path, trace=drifted)
        assert check_trace_schema(root).by_code("schema-drift")

    def test_missing_trace_module_is_a_lint_error(self, tmp_path):
        seed_tree(tmp_path)
        (tmp_path / "obs" / "trace.py").unlink()
        with pytest.raises(LintError):
            check_trace_schema(tmp_path)

    def test_pinned_schema_matches(self, tmp_path):
        root = seed_tree(tmp_path)
        assert len(check_trace_schema(root)) == 0


HOT_CLEAN = """
def _hot_expand(store, rows):
    total = 0
    for row in rows:
        rid = store.find(row)
        if rid is None:
            rid = store.append(row)
            total += 1
    return total
"""

HOT_ALLOCATING = """
def _hot_expand(codec, configs):
    rows = [codec.pack(config) for config in configs]
    return rows
"""

HOT_OBJECT_CALL = """
def _hot_step(program, config):
    return program.protocol.canonical_query_key(config)
"""


class TestKernelHotPath:
    def seed_kernel(self, tmp_path, explore):
        root = seed_tree(tmp_path)
        kernel = root / "kernel"
        kernel.mkdir()
        (kernel / "explore.py").write_text(explore, encoding="utf-8")
        return root

    def test_clean_hot_loop_passes(self, tmp_path):
        root = self.seed_kernel(tmp_path, HOT_CLEAN)
        assert len(check_kernel_hot_path(root)) == 0

    def test_comprehension_in_hot_loop_is_flagged(self, tmp_path):
        root = self.seed_kernel(tmp_path, HOT_ALLOCATING)
        diags = check_kernel_hot_path(root).by_code("kernel-hot-alloc")
        # Both the list comprehension and the pack() call are flagged.
        assert len(diags) == 2
        for diag in diags:
            assert "_hot_expand" in diag.message
            assert diag.path.endswith("kernel/explore.py")

    def test_object_layer_call_in_hot_loop_is_flagged(self, tmp_path):
        """pack/canonical_query_key etc. belong in setup, never in the
        per-row loop -- that is the whole point of the kernel."""
        root = self.seed_kernel(tmp_path, HOT_OBJECT_CALL)
        report = check_kernel_hot_path(root)
        assert report.by_code("kernel-hot-alloc")

    def test_explore_without_hot_function_is_flagged(self, tmp_path):
        root = self.seed_kernel(tmp_path, "def expand():\n    pass\n")
        assert check_kernel_hot_path(root).by_code("kernel-hot-missing")

    def test_tree_without_kernel_package_is_clean(self, tmp_path):
        root = seed_tree(tmp_path)
        assert len(check_kernel_hot_path(root)) == 0

    def test_banned_calls_outside_hot_functions_are_fine(self, tmp_path):
        source = HOT_CLEAN + "\ndef setup(codec, c):\n    return codec.pack(c)\n"
        root = self.seed_kernel(tmp_path, source)
        assert len(check_kernel_hot_path(root)) == 0


SHARED_STATE = "CACHE = {}\n"

SHARED_STATE_PRAGMA_LINE = (
    "CACHE = {}  # lint: allow-shared-state (per-process memo)\n"
)

UNSYNCED_WRITE = """
def save(path, data):
    with open(path, "w") as handle:
        handle.write(data)
"""

ATOMIC_WRITE = """
import os, tempfile

def save(path, data):
    fd, tmp = tempfile.mkstemp()
    with os.fdopen(fd, "w") as handle:
        handle.write(data)
        os.fsync(handle.fileno())
    os.replace(tmp, path)
"""

APPEND_JOURNAL = """
def journal(path, line):
    with open(path, "a") as handle:
        handle.write(line)
        handle.flush()
"""


class TestWorkerSharedState:
    def seed_worker(self, tmp_path, source, package="parallel"):
        root = seed_tree(tmp_path)
        pkg = root / package
        pkg.mkdir()
        (pkg / "worker.py").write_text(source, encoding="utf-8")
        return root

    def test_module_level_dict_is_flagged(self, tmp_path):
        from repro.lint import check_worker_shared_state

        root = self.seed_worker(tmp_path, SHARED_STATE)
        [diag] = check_worker_shared_state(root).by_code(
            "worker-shared-state"
        )
        assert "per-process copies" in diag.message

    def test_every_worker_package_is_audited(self, tmp_path):
        from repro.lint import check_worker_shared_state

        for package in ("parallel", "resilience", "kernel"):
            root = self.seed_worker(
                tmp_path / package, SHARED_STATE, package=package
            )
            assert check_worker_shared_state(root).by_code(
                "worker-shared-state"
            ), package

    def test_constructor_calls_are_flagged_too(self, tmp_path):
        from repro.lint import check_worker_shared_state

        source = (
            "from collections import defaultdict\n"
            "MEMO = defaultdict(list)\n"
        )
        root = self.seed_worker(tmp_path, source)
        assert check_worker_shared_state(root).by_code("worker-shared-state")

    def test_pragma_whitelists_the_line(self, tmp_path):
        from repro.lint import check_worker_shared_state

        root = self.seed_worker(tmp_path, SHARED_STATE_PRAGMA_LINE)
        assert len(check_worker_shared_state(root)) == 0

    def test_dunders_and_immutables_are_fine(self, tmp_path):
        from repro.lint import check_worker_shared_state

        source = (
            "__all__ = ['f']\n"
            "LIMIT = 8\n"
            "NAMES = ('a', 'b')\n"
            "KINDS = frozenset({'x'})\n"
            "def f():\n    cache = {}\n    return cache\n"
        )
        root = self.seed_worker(tmp_path, source)
        assert len(check_worker_shared_state(root)) == 0

    def test_tree_without_worker_packages_is_clean(self, tmp_path):
        from repro.lint import check_worker_shared_state

        assert len(check_worker_shared_state(seed_tree(tmp_path))) == 0


class TestCheckpointFsync:
    def seed_resilience(self, tmp_path, source):
        root = seed_tree(tmp_path)
        pkg = root / "resilience"
        pkg.mkdir()
        (pkg / "checkpoint.py").write_text(source, encoding="utf-8")
        return root

    def test_bare_write_open_is_flagged(self, tmp_path):
        from repro.lint import check_checkpoint_fsync

        root = self.seed_resilience(tmp_path, UNSYNCED_WRITE)
        [diag] = check_checkpoint_fsync(root).by_code(
            "checkpoint-unsynced-write"
        )
        assert "fsync" in diag.message

    def test_fsync_then_replace_passes(self, tmp_path):
        from repro.lint import check_checkpoint_fsync

        root = self.seed_resilience(tmp_path, ATOMIC_WRITE)
        assert len(check_checkpoint_fsync(root)) == 0

    def test_append_mode_journals_are_exempt(self, tmp_path):
        from repro.lint import check_checkpoint_fsync

        root = self.seed_resilience(tmp_path, APPEND_JOURNAL)
        assert len(check_checkpoint_fsync(root)) == 0

    def test_fsync_without_replace_still_flagged(self, tmp_path):
        from repro.lint import check_checkpoint_fsync

        source = (
            "import os\n"
            "def save(path, data):\n"
            "    with open(path, 'w') as handle:\n"
            "        handle.write(data)\n"
            "        os.fsync(handle.fileno())\n"
        )
        root = self.seed_resilience(tmp_path, source)
        [diag] = check_checkpoint_fsync(root).by_code(
            "checkpoint-unsynced-write"
        )
        assert "replace" in diag.message

    def test_pragma_whitelists_the_line(self, tmp_path):
        from repro.lint import check_checkpoint_fsync

        source = (
            "def save(path, data):\n"
            "    with open(path, 'w') as handle:"
            "  # lint: allow-unsynced-write (scratch file)\n"
            "        handle.write(data)\n"
        )
        root = self.seed_resilience(tmp_path, source)
        assert len(check_checkpoint_fsync(root)) == 0

    def test_tree_without_resilience_package_is_clean(self, tmp_path):
        from repro.lint import check_checkpoint_fsync

        assert len(check_checkpoint_fsync(seed_tree(tmp_path))) == 0


class TestLintRepository:
    def test_aggregates_all_checks_on_a_seeded_tree(self, tmp_path):
        root = seed_tree(
            tmp_path,
            core="import time\n",
            extra={"errs.py": PAYLOAD_ERROR},
        )
        parallel = root / "parallel"
        parallel.mkdir()
        (parallel / "worker.py").write_text(SHARED_STATE, encoding="utf-8")
        resilience = root / "resilience"
        resilience.mkdir()
        (resilience / "ckpt.py").write_text(UNSYNCED_WRITE, encoding="utf-8")
        report = lint_repository(root)
        assert set(report.codes) == {
            "nondeterministic-import", "unpicklable-error",
            "worker-shared-state", "checkpoint-unsynced-write",
        }
        assert report.blocking

    def test_missing_root_is_a_lint_error(self, tmp_path):
        with pytest.raises(LintError):
            lint_repository(tmp_path / "nope")


RAW_SQL = (
    "import sqlite3\n"
    "def peek(path):\n"
    "    conn = sqlite3.connect(path)\n"
    "    return conn.execute('SELECT * FROM jobs').fetchall()\n"
)


class TestServiceDbDiscipline:
    def seed_service(self, tmp_path, source, name="helper.py"):
        root = seed_tree(tmp_path)
        service = root / "service"
        service.mkdir()
        (service / name).write_text(source, encoding="utf-8")
        return root

    def test_raw_sql_outside_db_module_is_flagged(self, tmp_path):
        from repro.lint import check_service_db

        root = self.seed_service(tmp_path, RAW_SQL)
        report = check_service_db(root)
        codes = [d.code for d in report]
        assert codes.count("service-raw-sql") == 2  # connect + execute
        assert all("versioned-schema layer" in d.message for d in report)

    def test_db_module_itself_may_speak_sql(self, tmp_path):
        from repro.lint import check_service_db

        root = self.seed_service(tmp_path, RAW_SQL, name="db.py")
        assert len(check_service_db(root)) == 0

    def test_pragma_escapes_one_line(self, tmp_path):
        from repro.lint import check_service_db
        from repro.lint.selfcheck import RAW_SQL_PRAGMA

        escaped = RAW_SQL.replace(
            "sqlite3.connect(path)",
            f"sqlite3.connect(path)  # {RAW_SQL_PRAGMA} (read-only peek)",
        ).replace(
            "conn.execute('SELECT * FROM jobs')",
            "conn.execute('SELECT * FROM jobs')"
            f"  # {RAW_SQL_PRAGMA} (read-only peek)",
        )
        root = self.seed_service(tmp_path, escaped)
        assert len(check_service_db(root)) == 0

    def test_trees_without_a_service_package_pass_clean(self, tmp_path):
        from repro.lint import check_service_db

        assert len(check_service_db(seed_tree(tmp_path))) == 0

    def test_lint_repository_runs_the_check(self, tmp_path):
        root = self.seed_service(tmp_path, RAW_SQL)
        report = lint_repository(root)
        assert any(d.code == "service-raw-sql" for d in report)

    def test_non_sql_execute_names_elsewhere_are_ignored(self, tmp_path):
        from repro.lint import check_service_db

        # Only the service package is policed: executors elsewhere keep
        # their idioms.
        root = seed_tree(
            tmp_path, extra={"runner.py": "def go(e):\n    e.execute()\n"}
        )
        assert len(check_service_db(root)) == 0
