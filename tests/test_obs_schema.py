"""Schema regression tests: the journal format is a compatibility
contract.

``SCHEMA_VERSION`` and ``REQUIRED_KEYS`` are pinned against literal
values -- changing either is a breaking change to every saved journal
and must be a deliberate version bump, not a drive-by edit.  The
round-trip tests record a real adversary run and feed the journal back
through ``repro trace`` / ``repro stats``.
"""

import pytest

from repro.cli import main
from repro.errors import JournalError
from repro.faults import run_adversary_guarded
from repro.model.system import System
from repro.obs import (
    REQUIRED_KEYS,
    SCHEMA_VERSION,
    JsonlSink,
    MetricsRegistry,
    Tracer,
    observe,
    parse_journal,
    validate_record,
)
from repro.protocols.consensus import CommitAdoptRounds


def test_schema_version_is_pinned():
    # Bumping this is a format break: update parse_journal and the docs,
    # and keep readers for old journals (or document the abandonment).
    assert SCHEMA_VERSION == 1


def test_required_keys_are_pinned():
    assert REQUIRED_KEYS == {
        "span_start": (
            "v", "t", "run", "type", "name", "id", "parent", "data",
        ),
        "span_end": ("v", "t", "run", "type", "name", "id", "status"),
        "event": ("v", "t", "run", "type", "name", "parent", "data"),
        "metrics": ("v", "t", "run", "type", "name", "data"),
    }


def test_validate_record_rejects_bad_records():
    with pytest.raises(JournalError):
        validate_record([])  # not an object
    with pytest.raises(JournalError):
        validate_record({"v": 2, "type": "event"})  # wrong version
    with pytest.raises(JournalError):
        validate_record({"v": 1, "type": "nope"})  # unknown type
    with pytest.raises(JournalError):
        validate_record({"v": 1, "type": "event", "t": 0.0})  # missing keys


@pytest.fixture(scope="module")
def recorded_journal(tmp_path_factory):
    """One real traced adversary run, shared by the round-trip tests."""
    path = tmp_path_factory.mktemp("obs") / "journal.jsonl"
    tracer = Tracer(JsonlSink(path))
    registry = MetricsRegistry()
    try:
        with observe(tracer=tracer, metrics=registry):
            outcome = run_adversary_guarded(System(CommitAdoptRounds(3)))
            assert outcome.status == "certificate"
        tracer.emit_metrics(registry)
    finally:
        tracer.close()
    return path


def test_recorded_journal_validates_line_by_line(recorded_journal):
    records = parse_journal(recorded_journal)
    assert records
    for record in records:
        kind = validate_record(record)
        assert kind in REQUIRED_KEYS
    # One run id throughout.
    assert len({record["run"] for record in records}) == 1
    # Timestamps are monotone non-decreasing (a monotonic clock).
    times = [record["t"] for record in records]
    assert times == sorted(times)


def test_recorded_spans_pair_up(recorded_journal):
    records = parse_journal(recorded_journal)
    starts = {
        r["id"]: r for r in records if r["type"] == "span_start"
    }
    ends = {r["id"]: r for r in records if r["type"] == "span_end"}
    assert starts and set(starts) == set(ends)
    for span_id, end in ends.items():
        assert end["status"] == "ok"
        assert end["t"] >= starts[span_id]["t"]
    # Parent pointers reference real spans (or the root).
    for record in records:
        parent = record.get("parent")
        assert parent is None or parent in starts


def test_metrics_record_is_last(recorded_journal):
    records = parse_journal(recorded_journal)
    assert records[-1]["type"] == "metrics"
    data = records[-1]["data"]
    assert data["counters"]["oracle.queries"] > 0
    assert "explorer.frontier" in data["histograms"]


def test_trace_command_round_trips(recorded_journal, capsys):
    assert main(["trace", str(recorded_journal)]) == 0
    out = capsys.readouterr().out
    assert "theorem1" in out
    assert main(
        ["trace", str(recorded_journal), "--type", "event", "--limit", "3"]
    ) == 0
    out = capsys.readouterr().out
    assert "span_start" not in out


def test_stats_command_round_trips(recorded_journal, capsys):
    assert main(["stats", str(recorded_journal)]) == 0
    out = capsys.readouterr().out
    assert "oracle.queries" in out
    assert "oracle memo hit rate" in out


def test_cli_rejects_malformed_journal(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"v": 99}\n', "utf-8")
    assert main(["stats", str(bad)]) == 1
    assert main(["trace", str(bad)]) == 1
