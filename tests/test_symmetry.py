"""Tests for the process-symmetry reduction (anonymous protocols)."""

import pytest

from repro.analysis.explorer import Explorer
from repro.analysis.symmetry import SymmetricKey
from repro.core.valency import ValencyOracle
from repro.model.system import System
from repro.protocols.consensus import CasConsensus, SplitBrainConsensus
from repro.protocols.leader_election import Splitter


class TestSymmetricKey:
    def test_rejects_non_anonymous(self):
        # The splitter writes its pid: initial states differ per process.
        with pytest.raises(ValueError):
            SymmetricKey(Splitter(3), check_inputs=(None,))

    def test_accepts_anonymous(self):
        wrapped = SymmetricKey(CasConsensus(3))
        assert "symmetry" in wrapped.name
        assert wrapped.num_objects == 1

    def test_key_identifies_permuted_configurations(self):
        protocol = SymmetricKey(CasConsensus(3))
        system = System(protocol)
        left = system.initial_configuration([0, 1, 1])
        right = system.initial_configuration([1, 0, 1])
        assert protocol.canonical_key(left) == protocol.canonical_key(right)
        # Different input multiset -> different key.
        other = system.initial_configuration([0, 0, 1])
        assert protocol.canonical_key(left) != protocol.canonical_key(other)

    def test_key_respects_coins_with_states(self):
        from repro.model.configuration import Configuration

        protocol = SymmetricKey(CasConsensus(2))
        system = System(protocol)
        base = system.initial_configuration([0, 1])
        # Attach coin counts asymmetrically: (state0, 1) vs (state1, 0)
        # must NOT equal (state0, 0) vs (state1, 1).
        left = Configuration(base.states, base.memory, (1, 0))
        right = Configuration(base.states, base.memory, (0, 1))
        assert protocol.canonical_key(left) != protocol.canonical_key(right)
        # But swapping both (state, coin) pairs together is a symmetry.
        swapped = Configuration(
            (base.states[1], base.states[0]), base.memory, (0, 1)
        )
        assert protocol.canonical_key(left) == protocol.canonical_key(swapped)

    def test_reduction_shrinks_reachable_graph(self):
        plain = CasConsensus(4)
        reduced = SymmetricKey(CasConsensus(4))
        inputs = [0, 0, 1, 1]
        plain_count = Explorer(System(plain)).reachable_count(
            System(plain).initial_configuration(inputs), frozenset(range(4))
        )
        reduced_count = Explorer(System(reduced)).reachable_count(
            System(reduced).initial_configuration(inputs),
            frozenset(range(4)),
        )
        assert reduced_count < plain_count

    def test_valency_answers_agree_with_unreduced(self):
        inputs = [0, 1, 1]
        plain_system = System(CasConsensus(3))
        reduced_system = System(SymmetricKey(CasConsensus(3)))
        plain = ValencyOracle(plain_system)
        reduced = ValencyOracle(reduced_system)
        plain_config = plain_system.initial_configuration(inputs)
        reduced_config = reduced_system.initial_configuration(inputs)
        for pids in [{0}, {1}, {0, 1}, {0, 1, 2}]:
            for value in (0, 1):
                assert plain.can_decide(
                    plain_config, frozenset(pids), value
                ) == reduced.can_decide(reduced_config, frozenset(pids), value)

    def test_broken_protocol_violations_still_found(self):
        from repro.analysis.checker import check_consensus_exhaustive

        system = System(SymmetricKey(SplitBrainConsensus(2)))
        result = check_consensus_exhaustive(system, [0, 1])
        assert not result.ok
