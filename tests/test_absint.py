"""The abstract interpreter: domains, transfer, fixpoint, verdicts.

Pinned regressions at the bottom are the PR's reason to exist: two table
automata the footprint lint *cannot* refute (every register is
syntactically written) that the value-aware analysis refutes statically
-- one by validity, one by validity *and* the write bound.
"""

from types import SimpleNamespace

import pytest

from repro.errors import AbsintError
from repro.model.program import ProgramProtocol
from repro.model.table import TableProtocol
from repro.absint import (
    ValueSet,
    WIDEN_WIDTH,
    absint_refutation,
    absint_summary,
    analyze_protocol,
    analyze_table,
    atom,
    crosscheck_dynamic,
    static_certificate,
    table_rule_effect,
    top_reachability,
)
from repro.lint import (
    consensus_impossible,
    crosscheck_certificate,
    lint_protocol,
)


def biased_decider():
    """Footprint-clean, absint-refuted: always decides 0.

    Both processes write their input, then read r0 and decide 0
    regardless.  The writable footprint is {0, 1} (= n-1 = 2 registers,
    passes Theorem 1's contrapositive), but the abstract decide set on
    unanimous input 1 is {0}: validity is statically violated.
    """
    return TableProtocol(
        name="biased",
        n=3,
        registers=2,
        initial={0: 0, 1: 1},
        rules={0: ("write", 0, 0), 1: ("write", 1, 1), 2: ("read", 0)},
        transitions={(0, None): 2, (1, None): 2},
        defaults={2: 3},
        decisions={3: 0},
    )


def magic_response():
    """Footprint-clean, absint-refuted through value awareness.

    State 0 reads r0 and branches to state 5 -- the only writer of r1 --
    only on response ``"magic"``, a value no register ever holds.  The
    footprint counts the syntactically present ``write r1`` rule; the
    fixpoint proves state 5 unreachable, shrinking the write set to {0}
    (< n-1) and the decide set to {0}.
    """
    return TableProtocol(
        name="magic",
        n=3,
        registers=2,
        initial={0: 0, 1: 0},
        rules={0: ("read", 0), 5: ("write", 1, 1), 6: ("write", 0, 0)},
        transitions={
            (0, "magic"): 5, (0, None): 6, (5, None): 7, (6, None): 7,
        },
        defaults={},
        decisions={7: 0},
    )


def honest_decider():
    """A clean table: decides its own input, writes n-1 registers."""
    return TableProtocol(
        name="honest",
        n=2,
        registers=1,
        initial={0: 0, 1: 1},
        rules={0: ("write", 0, 0), 1: ("write", 0, 1)},
        transitions={(0, None): 2, (1, None): 3},
        defaults={},
        decisions={2: 0, 3: 1},
    )


class TestValueSet:
    def test_join_is_union(self):
        assert ValueSet.of(0).join(ValueSet.of(1)).sorted() == (0, 1)

    def test_top_absorbs(self):
        assert ValueSet.of(0).join(ValueSet.top_set()).is_top()
        assert 12345 in ValueSet.top_set()

    def test_membership_and_emptiness(self):
        assert 0 in ValueSet.of(0)
        assert 1 not in ValueSet.of(0)
        assert ValueSet.bottom().is_empty()
        assert not ValueSet.top_set().is_empty()

    def test_cardinality_cap_widens(self):
        big = ValueSet.from_iterable(range(WIDEN_WIDTH + 1))
        assert big.is_top()
        exact = ValueSet.from_iterable(range(WIDEN_WIDTH))
        assert not exact.is_top()
        assert exact.add(WIDEN_WIDTH).is_top()

    def test_contains_set_is_lattice_order(self):
        small, big = ValueSet.of(0), ValueSet.of(0, 1)
        assert big.contains_set(small)
        assert not small.contains_set(big)
        assert ValueSet.top_set().contains_set(big)
        assert not big.contains_set(ValueSet.top_set())

    def test_top_has_no_enumeration(self):
        with pytest.raises(ValueError):
            ValueSet.top_set().sorted()
        with pytest.raises(ValueError):
            len(ValueSet.top_set())

    def test_rendering(self):
        assert ValueSet.top_set().describe() == "⊤"
        assert ValueSet.of(1, 0).describe() == "{0, 1}"
        assert ValueSet.top_set().to_json() == "top"
        assert ValueSet.of(1, 0).to_json() == [0, 1]

    def test_atom_convention(self):
        assert atom(None) is None and atom(3) == 3 and atom("x") == "x"
        assert atom((1, 2)) == "(1, 2)"


class TestTableTransfer:
    def test_read_responds_without_writing(self):
        effect = table_rule_effect(("read", 0), 2, ValueSet.of(0, 1))
        assert not effect.writes
        assert set(effect.responses) == {0, 1}

    def test_write_stores_constant_and_responds_none(self):
        effect = table_rule_effect(("write", 1, 7), 2, ValueSet.of(0))
        assert effect.writes and effect.written == 7
        assert effect.responses == (None,)
        assert effect.register == 1

    def test_swap_responds_with_old_values(self):
        effect = table_rule_effect(("swap", 0, 9), 2, ValueSet.of(0, 1))
        assert effect.writes and effect.written == 9
        assert set(effect.responses) == {0, 1}

    def test_tas_writes_one(self):
        effect = table_rule_effect(("tas", 0), 2, ValueSet.of(0))
        assert effect.writes and effect.written == 1
        assert set(effect.responses) == {0}

    def test_top_input_is_an_analysis_error(self):
        with pytest.raises(AbsintError):
            table_rule_effect(("read", 0), 2, ValueSet.top_set())

    def test_unknown_opcode_is_an_analysis_error(self):
        with pytest.raises(AbsintError):
            table_rule_effect(("frob", 0), 2, ValueSet.of(0))


class TestTableFixpoint:
    def test_unreachable_writer_is_pruned(self):
        reach = analyze_table(magic_response())
        assert 5 not in reach.states
        assert reach.writes == frozenset({0})
        assert 1 not in reach.memory[1]

    def test_value_blind_cfg_cannot_prune_it(self):
        from repro.lint.cfg import table_cfg

        # The CFG follows every transition target regardless of values,
        # so state 5 looks reachable to it -- the precision gap this
        # analysis exists to close.
        assert 5 in table_cfg(magic_response()).reachable

    def test_per_input_decide_sets(self):
        p = biased_decider()
        zero = analyze_table(p, (0,))
        one = analyze_table(p, (1,))
        assert zero.decisions.sorted() == (0,)
        assert one.decisions.sorted() == (0,)  # decides 0 on input 1!

    def test_containment_against_concrete_configs(self):
        from repro.analysis.explorer import Explorer
        from repro.model.system import System

        p = biased_decider()
        reach = analyze_table(p, (1,))
        system = System(p)
        explorer = Explorer(system, max_configs=5_000, strict=False)
        root = system.initial_configuration([1, 1, 1])
        try:
            for config, _ in explorer.iter_reachable(root, frozenset(range(3))):
                assert reach.violation_for(config) is None
        finally:
            explorer.close()

    def test_violation_for_reports_escapes(self):
        p = honest_decider()
        reach = analyze_table(p)
        bad_state = SimpleNamespace(states=(99,), memory=(0,))
        assert "state 99" in reach.violation_for(bad_state)
        bad_value = SimpleNamespace(states=(0,), memory=("ghost",))
        assert "r0" in reach.violation_for(bad_value)

    def test_fixpoint_is_deterministic(self):
        a = analyze_table(magic_response())
        b = analyze_table(magic_response())
        assert a == b


class TestDispatch:
    def test_program_protocols_get_top_states_exact_writes(self):
        from repro.protocols.consensus import CommitAdoptRounds

        reach = analyze_protocol(CommitAdoptRounds(3))
        assert reach.states.is_top()
        # Round indices are env-dependent, so the write set widens to
        # the declared universe -- flagged as such, never trusted.
        assert reach.widened_writes
        assert len(reach.writes) >= 2  # n-1: it really solves consensus

    def test_table_subclass_is_not_trusted(self):
        class Subclassed(TableProtocol):
            pass

        p = honest_decider()
        sub = Subclassed(
            name="sub", n=p.n, registers=p.registers, initial=p.initial,
            rules=p.rules, transitions=p.transitions, defaults=p.defaults,
            decisions=p.decisions,
        )
        reach = analyze_protocol(sub)
        assert reach.is_top  # opaque: widened, zero verdicts
        assert not static_certificate(sub).refuted

    def test_top_reachability_is_sound_for_anything(self):
        reach = top_reachability(honest_decider())
        config = SimpleNamespace(states=("anything", 3), memory=(None,))
        assert reach.violation_for(config) is None


class TestVerdicts:
    def test_biased_decider_refuted_by_validity_not_footprint(self):
        p = biased_decider()
        assert consensus_impossible(p) is None  # footprint passes
        certificate = static_certificate(p)
        assert certificate.refuted
        assert certificate.kinds == ("validity",)
        [verdict] = certificate.verdicts
        assert verdict.input == 1

    def test_magic_response_refuted_twice_not_by_footprint(self):
        p = magic_response()
        assert consensus_impossible(p) is None  # footprint passes
        certificate = static_certificate(p)
        assert certificate.kinds == ("validity", "write-bound")

    def test_honest_decider_is_clean(self):
        certificate = static_certificate(honest_decider())
        assert not certificate.refuted
        assert certificate.refutation() is None

    def test_no_decide_verdict(self):
        # Input 1 starts in a rule-less, decision-less state: halted
        # forever, no decision abstractly (or concretely) reachable.
        p = TableProtocol(
            name="stuck", n=2, registers=1,
            initial={0: 0, 1: 9},
            rules={0: ("write", 0, 0)},
            transitions={(0, None): 2},
            defaults={},
            decisions={2: 0},
        )
        certificate = static_certificate(p)
        assert "no-decide" in certificate.kinds

    def test_programs_get_empty_verdicts(self):
        from repro.protocols.consensus import CommitAdoptRounds

        certificate = static_certificate(CommitAdoptRounds(3))
        assert certificate.representation == "program"
        assert not certificate.refuted

    def test_refutation_and_summary_helpers(self):
        assert absint_refutation(honest_decider()) is None
        summary = absint_summary(magic_response())
        assert summary["refuted"] is True
        assert summary["kinds"] == ["validity", "write-bound"]
        assert summary["writes"] == [0]


class TestCertificates:
    def test_json_roundtrip_is_byte_stable(self):
        a = static_certificate(magic_response())
        b = static_certificate(magic_response())
        assert a.to_json() == b.to_json()

    def test_validate_accepts_fresh_protocol(self):
        certificate = static_certificate(magic_response())
        certificate.validate(magic_response())  # must not raise

    def test_validate_rejects_changed_protocol(self):
        certificate = static_certificate(magic_response())
        with pytest.raises(AbsintError):
            certificate.validate(biased_decider())

    def test_crosscheck_flags_refuted_protocol_with_dynamic_cert(self):
        static = static_certificate(biased_decider())
        dynamic = SimpleNamespace(registers=frozenset({0}), bound=1)
        problems = crosscheck_dynamic(static, dynamic)
        assert any("refutes" in p for p in problems)

    def test_crosscheck_flags_escaped_registers(self):
        # Three declared registers, only r0 abstractly written: a
        # dynamic certificate exhibiting r2 contradicts the analysis.
        p = TableProtocol(
            name="wide-honest", n=2, registers=3,
            initial={0: 0, 1: 1},
            rules={0: ("write", 0, 0), 1: ("write", 0, 1)},
            transitions={(0, None): 2, (1, None): 3},
            defaults={},
            decisions={2: 0, 3: 1},
        )
        static = static_certificate(p)
        assert not static.refuted
        dynamic = SimpleNamespace(registers=frozenset({0, 2}), bound=1)
        problems = crosscheck_dynamic(static, dynamic)
        assert any("under-approximated" in p for p in problems)

    def test_crosscheck_flags_impossible_bound(self):
        static = static_certificate(honest_decider())
        dynamic = SimpleNamespace(registers=None, bound=99)
        problems = crosscheck_dynamic(static, dynamic)
        assert any("99" in p for p in problems)

    def test_crosscheck_clean_on_consistent_pair(self):
        static = static_certificate(honest_decider())
        dynamic = SimpleNamespace(registers=frozenset({0}), bound=1)
        assert crosscheck_dynamic(static, dynamic) == []


class TestLintIntegration:
    def test_lint_reports_absint_verdicts(self):
        report = lint_protocol(magic_response())
        codes = {d.code for d in report}
        assert "absint-validity" in codes
        assert "absint-write-bound" in codes
        assert "footprint-below-bound" not in codes

    def test_write_bound_not_doubled_when_footprint_already_fires(self):
        # Every rule writes r0 only: the footprint refutes this itself,
        # so absint suppresses its own write-bound echo.
        p = TableProtocol(
            name="narrow", n=3, registers=2,
            initial={0: 0, 1: 1},
            rules={0: ("write", 0, 0), 1: ("write", 0, 1)},
            transitions={(0, None): 2, (1, None): 2},
            defaults={},
            decisions={2: 0},
        )
        report = lint_protocol(p)
        codes = [d.code for d in report]
        assert "footprint-below-bound" in codes
        assert "absint-write-bound" not in codes

    def test_lint_clean_protocol_stays_clean(self):
        report = lint_protocol(honest_decider())
        assert not any(d.code.startswith("absint-") for d in report)

    def test_crosscheck_certificate_reports_absint_mismatch(self):
        dynamic = SimpleNamespace(registers=frozenset({0}), bound=1)
        report = crosscheck_certificate(biased_decider(), dynamic)
        assert report.by_code("certificate-absint-mismatch")

    def test_crosscheck_certificate_clean_on_real_family(self):
        from repro.core.theorem import space_lower_bound_auto
        from repro.model.system import System
        from repro.protocols.consensus import CommitAdoptRounds

        protocol = CommitAdoptRounds(2)
        certificate = space_lower_bound_auto(System(protocol))
        report = crosscheck_certificate(protocol, certificate)
        assert len(report) == 0, report.to_json()
