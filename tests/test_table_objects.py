"""Swap/test&set table automata: kinds resolution and step semantics."""

import pickle

import pytest

from repro.errors import ModelError
from repro.model.system import System
from repro.model.table import TableProtocol


def swap_race():
    return TableProtocol(
        n=2,
        registers=1,
        initial={0: 0, 1: 1},
        rules={0: ("swap", 0, 0), 1: ("swap", 0, 1)},
        transitions={(0, None): 2, (0, 1): 3, (1, None): 3, (1, 0): 2},
        decisions={2: 0, 3: 1},
        name="swap-race",
    )


class TestKindResolution:
    def test_swap_rule_infers_swap_register(self):
        p = swap_race()
        assert p.register_kinds == {0: "swap"}

    def test_tas_rule_infers_tas_register(self):
        p = TableProtocol(
            n=2, registers=2, initial={0: 0},
            rules={0: ("tas", 1)},
        )
        assert p.register_kinds == {0: "register", 1: "tas"}

    def test_plain_rules_stay_register(self):
        p = TableProtocol(
            n=2, registers=1, initial={0: 0},
            rules={0: ("write", 0, 1), 1: ("read", 0)},
        )
        assert p.register_kinds == {0: "register"}

    def test_explicit_kind_pins_win(self):
        p = TableProtocol(
            n=2, registers=1, initial={0: 0},
            rules={0: ("read", 0)},
            kinds={0: "swap"},
        )
        assert p.register_kinds == {0: "swap"}

    def test_swap_and_tas_on_one_register_rejected(self):
        with pytest.raises(ModelError):
            TableProtocol(
                n=2, registers=1, initial={0: 0},
                rules={0: ("swap", 0, 1), 1: ("tas", 0)},
            )

    def test_write_on_tas_register_rejected(self):
        with pytest.raises(ModelError):
            TableProtocol(
                n=2, registers=1, initial={0: 0},
                rules={0: ("write", 0, 1)},
                kinds={0: "tas"},
            )

    def test_swap_rule_on_plain_register_rejected(self):
        with pytest.raises(ModelError):
            TableProtocol(
                n=2, registers=1, initial={0: 0},
                rules={0: ("swap", 0, 1)},
                kinds={0: "register"},
            )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ModelError):
            TableProtocol(
                n=2, registers=1, initial={0: 0},
                rules={0: ("read", 0)},
                kinds={0: "fetch-add"},
            )

    def test_register_index_taken_modulo(self):
        p = TableProtocol(
            n=2, registers=2, initial={0: 0},
            rules={0: ("swap", 5, 1)},  # 5 % 2 == 1
        )
        assert p.register_kinds[1] == "swap"


class TestSwapSemantics:
    def test_first_swapper_sees_initial_memory(self):
        system = System(swap_race())
        config = system.initial_configuration([0, 1])
        config, _ = system.run(config, [0])
        # pid 0 swapped first: response None -> state 2, decides 0.
        assert system.decided_values(config) == {0}

    def test_loser_adopts_winner_value(self):
        system = System(swap_race())
        config = system.initial_configuration([0, 1])
        config, _ = system.run(config, [0, 1])
        # pid 1 swaps second, receives pid 0's value 0 and adopts it.
        assert system.decided_values(config) == {0}

    def test_swap_race_agrees_on_all_interleavings(self):
        from repro.analysis.checker import check_consensus_exhaustive

        system = System(swap_race())
        result = check_consensus_exhaustive(system, [0, 1])
        assert result.ok and result.exhaustive


class TestTasSemantics:
    def tas_pair(self):
        return TableProtocol(
            n=2, registers=1, initial={0: 0, 1: 0},
            rules={0: ("tas", 0)},
            transitions={(0, 0): 1, (0, 1): 2},
            decisions={1: "won", 2: "lost"},
            name="tas-pair",
        )

    def test_exactly_one_winner(self):
        system = System(self.tas_pair())
        config = system.initial_configuration([0, 0])
        config, _ = system.run(config, [0, 1])
        decided = [
            system.protocol.decision(p, config.states[p]) for p in (0, 1)
        ]
        assert sorted(decided) == ["lost", "won"]

    def test_tas_initializes_to_zero_regardless_of_initial_memory(self):
        p = TableProtocol(
            n=2, registers=1, initial={0: 0, 1: 0},
            rules={0: ("tas", 0)},
            transitions={(0, 0): 1, (0, 1): 2},
            decisions={1: "won", 2: "lost"},
            initial_memory="garbage",
        )
        system = System(p)
        config = system.initial_configuration([0, 0])
        config, _ = system.run(config, [0])
        assert system.protocol.decision(0, config.states[0]) == "won"


class TestRecipeCompat:
    def test_ctor_recipe_roundtrips_through_pickle(self):
        p = swap_race()
        clone = pickle.loads(pickle.dumps(p))
        assert clone.rules == p.rules
        assert clone.register_kinds == p.register_kinds

    def test_kinds_kwarg_absent_from_legacy_recipes(self):
        # Pre-existing TableProtocol call sites never pass `kinds`;
        # their ctor recipe (and so fingerprints) must be unchanged.
        p = TableProtocol(
            n=2, registers=1, initial={0: 0},
            rules={0: ("read", 0)},
        )
        args, kwargs = p._ctor_args
        assert "kinds" not in kwargs
