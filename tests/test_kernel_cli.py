"""CLI surface of the compiled kernel: --kernel flags and `repro stats`.

The flag contract: ``--kernel compiled`` (the default) and ``--kernel
interp`` print byte-identical reports and exit codes on every command
that explores; ``repro stats`` renders the kernel table from a traced
run and guards every derived row with "n/a" on journals that never
compiled anything.
"""

import json

from repro.cli import main
from repro.obs import parse_journal


def run_cli(argv, capsys):
    rc = main(argv)
    return rc, capsys.readouterr().out


class TestAdversaryKernelFlag:
    def test_compiled_and_interp_reports_are_byte_identical(self, capsys):
        rc_c, out_c = run_cli(
            ["adversary", "rounds:3", "--kernel", "compiled"], capsys
        )
        rc_i, out_i = run_cli(
            ["adversary", "rounds:3", "--kernel", "interp"], capsys
        )
        assert (rc_c, out_c) == (rc_i, out_i)
        assert rc_c == 0

    def test_compiled_run_traces_compilation(self, tmp_path, capsys):
        journal = tmp_path / "compiled.jsonl"
        rc, _ = run_cli(
            [
                "adversary", "rounds:3", "--kernel", "compiled",
                "--trace-out", str(journal),
            ],
            capsys,
        )
        assert rc == 0
        records = parse_journal(journal)
        compiles = [
            r for r in records
            if r["type"] == "event" and r["name"] == "kernel.compiled"
        ]
        assert compiles
        counters = records[-1]["data"]["counters"]
        assert counters.get("kernel.compiles", 0) >= 1
        assert counters.get("kernel.fallbacks", 0) == 0

    def test_interp_run_never_compiles(self, tmp_path, capsys):
        journal = tmp_path / "interp.jsonl"
        rc, _ = run_cli(
            [
                "adversary", "rounds:3", "--kernel", "interp",
                "--trace-out", str(journal),
            ],
            capsys,
        )
        assert rc == 0
        counters = parse_journal(journal)[-1]["data"]["counters"]
        assert counters.get("kernel.compiles", 0) == 0


class TestStatsKernelTable:
    def test_kernel_table_from_compiled_run(self, tmp_path, capsys):
        journal = tmp_path / "run.jsonl"
        rc, _ = run_cli(
            [
                "adversary", "rounds:3", "--kernel", "compiled",
                "--trace-out", str(journal),
            ],
            capsys,
        )
        assert rc == 0
        rc, out = run_cli(["stats", str(journal)], capsys)
        assert rc == 0
        assert "kernel" in out
        compiled_row = next(
            l for l in out.splitlines() if l.startswith("programs compiled")
        )
        assert not compiled_row.rstrip().endswith("0")
        batch_row = next(
            l for l in out.splitlines() if l.startswith("mean batch size")
        )
        assert not batch_row.rstrip().endswith("n/a")

    def test_kernel_table_na_on_idle_journal(self, tmp_path, capsys):
        """A journal that never compiled anything renders zeros and
        "n/a" -- no division, no KeyError."""
        journal = tmp_path / "idle.jsonl"
        record = {
            "v": 1,
            "t": 0.0,
            "run": "idle",
            "type": "metrics",
            "name": "metrics",
            "data": {"counters": {}, "gauges": {}, "histograms": {}},
        }
        journal.write_text(json.dumps(record) + "\n", "utf-8")
        rc, out = run_cli(["stats", str(journal)], capsys)
        assert rc == 0
        for row in ("mean batch size", "fallback reasons"):
            line = next(l for l in out.splitlines() if l.startswith(row))
            assert line.rstrip().endswith("n/a"), line
        for row in (
            "programs compiled",
            "batch explorations",
            "spill segments written",
            "rows spilled",
            "interpreter fallbacks",
        ):
            line = next(l for l in out.splitlines() if l.startswith(row))
            assert line.rstrip().endswith("0"), line

    def test_kernel_table_lists_fallback_reasons(self, tmp_path, capsys):
        journal = tmp_path / "fellback.jsonl"
        record = {
            "v": 1,
            "t": 0.0,
            "run": "fellback",
            "type": "metrics",
            "name": "metrics",
            "data": {
                "counters": {
                    "kernel.fallbacks": 2,
                    "kernel.fallback.sharded-workers": 1,
                    "kernel.fallback.system-subclass": 1,
                },
                "gauges": {},
                "histograms": {},
            },
        }
        journal.write_text(json.dumps(record) + "\n", "utf-8")
        rc, out = run_cli(["stats", str(journal)], capsys)
        assert rc == 0
        reasons = next(
            l for l in out.splitlines() if l.startswith("fallback reasons")
        )
        assert "sharded-workers" in reasons
        assert "system-subclass" in reasons


class TestFuzzKernelFlag:
    def test_interp_drops_the_compiled_leg(self):
        from repro.cli import _fuzz_engines

        compiled = _fuzz_engines(2, "compiled")
        interp = _fuzz_engines(2, "interp")
        assert any(spec.kernel == "compiled" for spec in compiled)
        assert all(spec.kernel == "interp" for spec in interp)
        assert len(interp) == len(compiled) - 1
        # The interpreted legs themselves are untouched by the flag.
        assert [s.name for s in interp] == [
            s.name for s in compiled if s.kernel == "interp"
        ]

    def test_fuzz_run_accepts_kernel_flag(self, tmp_path, capsys):
        rc, out = run_cli(
            [
                "fuzz", "run", "--count", "1", "--seed", "7",
                "--kernel", "interp",
            ],
            capsys,
        )
        assert rc == 0
        assert "fuzz campaign seed=7" in out
