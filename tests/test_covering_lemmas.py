"""Tests for the covering machinery (Definition 2) and Lemmas 1-3."""

import pytest

from repro.errors import AdversaryError
from repro.core.covering import (
    block_write_schedule,
    covered_registers,
    covering_map,
    is_covering_set,
    is_well_spread,
)
from repro.core.lemmas import (
    lemma1,
    lemma2_check,
    lemma3,
    truncate_before_uncovered_write,
)
from repro.core.valency import ValencyOracle
from repro.model.system import System
from repro.protocols.consensus import (
    CasConsensus,
    CommitAdoptRounds,
    TasConsensus,
)


def bounded_oracle(system):
    return ValencyOracle(system, max_configs=20_000, max_depth=50, strict=False)


class TestCovering:
    def test_initial_round_protocol_everyone_covers(self):
        system = System(CommitAdoptRounds(3))
        config = system.initial_configuration([0, 1, 1])
        # Everyone's first step is the phase-1 proposal write to their own
        # register: a well-spread covering set of size 3.
        assert is_covering_set(system, config, {0, 1, 2})
        assert is_well_spread(system, config, {0, 1, 2})
        assert covered_registers(system, config, {0, 1, 2}) == frozenset(
            {0, 1, 2}
        )

    def test_covering_map_reports_registers(self):
        system = System(CommitAdoptRounds(2))
        config = system.initial_configuration([0, 1])
        assert covering_map(system, config, [0, 1]) == {0: 0, 1: 1}

    def test_reader_covers_nothing(self):
        system = System(CommitAdoptRounds(2))
        config = system.initial_configuration([0, 1])
        config, _ = system.step(config, 0)  # p0 wrote; now poised at a read
        assert system.covered_register(config, 0) is None
        assert not is_covering_set(system, config, {0})

    def test_block_write_is_sorted_and_validated(self):
        system = System(CommitAdoptRounds(3))
        config = system.initial_configuration([0, 1, 1])
        assert block_write_schedule(system, config, {2, 0, 1}) == (0, 1, 2)
        config, _ = system.step(config, 0)
        with pytest.raises(AdversaryError):
            block_write_schedule(system, config, {0, 1})

    def test_well_spread_fails_on_shared_target(self):
        from repro.protocols.consensus import shared_register_rounds

        system = System(shared_register_rounds(3, 1))
        config = system.initial_configuration([0, 1, 1])
        # All three processes are poised to write register 0.
        assert is_covering_set(system, config, {0, 1, 2})
        assert not is_well_spread(system, config, {0, 1, 2})

    def test_empty_set_is_valid_covering(self):
        system = System(CommitAdoptRounds(2))
        config = system.initial_configuration([0, 1])
        assert is_covering_set(system, config, set())
        assert block_write_schedule(system, config, set()) == ()


class TestLemma1:
    def test_on_round_protocol(self):
        system = System(CommitAdoptRounds(3))
        oracle = bounded_oracle(system)
        config = system.initial_configuration([0, 1, 1])
        result = lemma1(system, oracle, config, frozenset({0, 1, 2}))
        assert result.z in {0, 1, 2}
        survivors = frozenset({0, 1, 2}) - {result.z}
        after, _ = system.run(config, result.phi)
        assert oracle.is_bivalent(after, survivors)

    def test_on_cas_protocol_exact(self):
        # Lemma 1 is pure valency, so it holds for any object type.
        system = System(CasConsensus(3))
        oracle = ValencyOracle(system)
        config = system.initial_configuration([0, 1, 0])
        result = lemma1(system, oracle, config, frozenset({0, 1, 2}))
        survivors = frozenset({0, 1, 2}) - {result.z}
        after, _ = system.run(config, result.phi)
        assert oracle.is_bivalent(after, survivors)

    def test_rejects_small_sets(self):
        system = System(CasConsensus(3))
        oracle = ValencyOracle(system)
        config = system.initial_configuration([0, 1, 0])
        with pytest.raises(AdversaryError):
            lemma1(system, oracle, config, frozenset({0, 1}))


class TestLemma2:
    def test_deciding_solo_run_escapes_covered_set(self):
        system = System(CommitAdoptRounds(3))
        config = system.initial_configuration([0, 1, 1])
        # Processes 0 and 1 cover registers 0 and 1; z = 2 must write
        # outside {0, 1} before deciding (it writes its own register 2).
        assert lemma2_check(system, config, 2, frozenset({0, 1}))

    def test_truncation_returns_prefix_and_fresh_register(self):
        system = System(CommitAdoptRounds(3))
        config = system.initial_configuration([0, 1, 1])
        zeta, fresh = truncate_before_uncovered_write(
            system, config, 2, frozenset({0, 1})
        )
        assert fresh == 2
        assert all(pid == 2 for pid in zeta)
        after, _ = system.run(config, zeta)
        op = system.poised(after, 2)
        assert op.is_write and op.obj == 2

    def test_truncation_raises_when_z_decides_inside(self):
        # Cover *all* registers: a correct protocol's solo run then never
        # escapes, which is impossible -- here we fake it by covering all
        # of CAS's single object, where the solo run legitimately decides
        # after its (covered) operation: the lemma's precondition fails
        # and the procedure reports it.
        system = System(CasConsensus(2))
        config = system.initial_configuration([0, 1])
        with pytest.raises(AdversaryError):
            truncate_before_uncovered_write(
                system, config, 0, frozenset({0})
            )


class TestLemma3:
    def test_on_round_protocol(self):
        system = System(CommitAdoptRounds(3))
        oracle = bounded_oracle(system)
        config = system.initial_configuration([0, 1, 1])
        everyone = frozenset({0, 1, 2})
        covering = frozenset({2})
        result = lemma3(system, oracle, config, everyone, covering)
        assert result.q in {0, 1}
        assert result.beta == (2,)
        base, _ = system.run(config, result.phi + result.beta)
        assert oracle.is_bivalent(base, covering | {result.q})

    def test_rejects_empty_covering(self):
        system = System(CommitAdoptRounds(3))
        oracle = bounded_oracle(system)
        config = system.initial_configuration([0, 1, 1])
        with pytest.raises(AdversaryError):
            lemma3(system, oracle, config, frozenset({0, 1, 2}), frozenset())

    def test_rejects_non_covering_processes(self):
        system = System(CommitAdoptRounds(3))
        oracle = bounded_oracle(system)
        config = system.initial_configuration([0, 1, 1])
        config, _ = system.step(config, 2)  # p2 now poised at a read
        with pytest.raises(AdversaryError):
            lemma3(
                system, oracle, config, frozenset({0, 1, 2}), frozenset({2})
            )

    def test_fails_on_cas_as_theory_predicts(self):
        # The covering argument needs overwriting: a block of CAS
        # operations does not obliterate an earlier CAS, so the lemma's
        # construction cannot go through against CasConsensus.
        system = System(CasConsensus(3))
        oracle = ValencyOracle(system)
        config = system.initial_configuration([0, 1, 0])
        with pytest.raises(AdversaryError):
            lemma3(
                system, oracle, config, frozenset({0, 1, 2}), frozenset({2})
            )

    def test_historyless_but_seeing_tas_also_breaks(self):
        # Test&set is historyless yet *sees* the previous value; the
        # paper's conclusion flags exactly this case as open.  The
        # machinery reports the obstruction rather than mis-certifying.
        system = System(TasConsensus())
        oracle = ValencyOracle(system)
        config = system.initial_configuration([0, 1])
        config0, _ = system.step(config, 0)  # p0 published, poised at T&S
        config01, _ = system.step(config0, 1)  # p1 published, poised at T&S
        with pytest.raises(AdversaryError):
            lemma3(
                system, oracle, config01, frozenset({0, 1}), frozenset({0})
            )
