"""Tests for the trace formatter."""

from repro.analysis.trace_format import (
    describe_op,
    describe_step,
    format_decisions,
    format_trace,
)
from repro.model.operations import (
    CoinFlip,
    CompareAndSwap,
    Marker,
    Read,
    Step,
    Swap,
    TestAndSet,
    Write,
)
from repro.model.system import System
from repro.protocols.consensus import CommitAdoptRounds


class TestDescribe:
    def test_op_descriptions(self):
        assert describe_op(Read(2)) == "read r2"
        assert describe_op(Write(0, 5)) == "write r0=5"
        assert describe_op(Swap(1, "x")) == "swap r1='x'"
        assert describe_op(TestAndSet(3)) == "t&s r3"
        assert describe_op(CompareAndSwap(0, None, 7)) == "cas r0 None->7"
        assert describe_op(CoinFlip()) == "flip"
        assert describe_op(Marker("enter_cs")) == "[enter_cs]"

    def test_step_with_response(self):
        step = Step(1, Read(0), 42)
        assert describe_step(step) == "p1 read r0 -> 42"

    def test_write_step_without_response(self):
        step = Step(0, Write(1, "v"), None)
        assert describe_step(step) == "p0 write r1='v'"


class TestFormatTrace:
    def real_trace(self):
        system = System(CommitAdoptRounds(2))
        config = system.initial_configuration([0, 1])
        _, trace = system.run(config, [0, 1, 0, 1])
        return trace

    def test_lanes_and_rows(self):
        trace = self.real_trace()
        text = format_trace(trace, 2)
        lines = text.splitlines()
        assert lines[0].startswith("step")
        assert "p0" in lines[0] and "p1" in lines[0]
        assert len(lines) == 2 + len(trace)

    def test_truncation_note(self):
        trace = self.real_trace()
        text = format_trace(trace, 2, max_steps=2)
        assert "more steps" in text.splitlines()[-1]

    def test_acting_lane_filled(self):
        trace = self.real_trace()
        text = format_trace(trace, 2)
        first_row = text.splitlines()[2]
        # First step is by p0: its lane carries the op, p1's is blank.
        assert "write" in first_row

    def test_decisions_line(self):
        assert format_decisions([0, None]) == "decisions: p0=0  p1=?"
