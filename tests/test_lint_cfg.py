"""Control-flow analysis over a corpus of deliberately broken programs.

Each test seeds one specific defect into a small DSL program (or table
automaton) and asserts that exactly the expected diagnostic code comes
back -- these are the contract tests behind `repro lint`'s claim that it
flags every broken protocol in the corpus.
"""

from repro.lint import (
    EXIT,
    lint_protocol,
    program_cfg,
    undecidable_nodes,
    unreachable_labels,
)
from repro.model.program import ProgramBuilder, ProgramProtocol
from repro.model.registers import register
from repro.model.table import TableProtocol
from repro.protocols.consensus import (
    CommitAdoptRounds,
    SplitBrainConsensus,
    TasConsensus,
)


def _protocol(program, n=2, registers=2, name="under-test"):
    return ProgramProtocol(
        name=name,
        n=n,
        specs=[register(None, name=f"r{i}") for i in range(registers)],
        programs=[program] * n,
        initial_env=lambda pid, value: {"v": value},
    )


def _clean_program():
    builder = ProgramBuilder()
    builder.write(0, lambda e: e["v"])
    builder.read(1, "x")
    builder.decide(lambda e: e["v"])
    return builder.build()


class TestProgramCfg:
    def test_clean_program_has_no_findings(self):
        program = _clean_program()
        cfg = program_cfg(program)
        assert cfg.dead == ()
        assert not cfg.can_fall_off_end
        assert cfg.deciders == {2}
        assert unreachable_labels(program, cfg) == ()
        assert undecidable_nodes(cfg) == ()

    def test_code_after_decide_is_dead(self):
        builder = ProgramBuilder()
        builder.write(0, 1)
        builder.decide(0)
        builder.label("never")
        builder.write(1, 1)
        builder.decide(1)
        program = builder.build()
        cfg = program_cfg(program)
        assert cfg.dead == (2, 3)
        assert unreachable_labels(program, cfg) == ("never",)

    def test_missing_terminator_reaches_exit(self):
        builder = ProgramBuilder()
        builder.write(0, 1)
        builder.read(0, "x")
        cfg = program_cfg(builder.build())
        assert cfg.can_fall_off_end
        assert EXIT in cfg.reachable

    def test_branch_explores_both_arms(self):
        builder = ProgramBuilder()
        builder.branch_if(lambda e: e["v"] == 1, "one")
        builder.decide(0)
        builder.label("one")
        builder.decide(1)
        cfg = program_cfg(builder.build())
        assert cfg.dead == ()
        assert cfg.deciders == {1, 2}

    def test_write_loop_without_decide_is_undecidable(self):
        builder = ProgramBuilder()
        builder.branch_if(lambda e: e["v"] == 1, "spin")
        builder.write(0, lambda e: e["v"])
        builder.decide(lambda e: e["v"])
        builder.label("spin")
        builder.write(1, 1)
        builder.goto("spin")
        cfg = program_cfg(builder.build())
        # pc 1 still reaches the decide at pc 2; the spin write at pc 3
        # can never reach any decide.
        assert undecidable_nodes(cfg) == (3,)


class TestLintProtocolCorpus:
    """Every seeded defect produces its diagnostic through the public
    entry point (the same path `repro lint` takes)."""

    def test_dead_code_and_unreachable_label(self):
        builder = ProgramBuilder()
        builder.write(0, 1)
        builder.decide(0)
        builder.label("never")
        builder.write(1, 1)
        builder.decide(1)
        report = lint_protocol(_protocol(builder.build()))
        assert report.by_code("unreachable-label")
        assert report.by_code("dead-instruction")
        assert report.blocking

    def test_fall_off_end_is_an_error(self):
        builder = ProgramBuilder()
        builder.write(0, 1)
        builder.write(1, 1)
        report = lint_protocol(_protocol(builder.build()))
        [diag] = report.by_code("fall-off-end")
        assert diag.severity == "error"

    def test_no_decide_instruction(self):
        builder = ProgramBuilder()
        builder.label("spin")
        builder.write(0, 1)
        builder.write(1, 1)
        builder.goto("spin")
        report = lint_protocol(_protocol(builder.build()))
        assert report.by_code("no-decide-instruction")

    def test_no_decide_path_from_spin_loop(self):
        builder = ProgramBuilder()
        builder.branch_if(lambda e: e["v"] == 1, "spin")
        builder.write(0, lambda e: e["v"])
        builder.decide(lambda e: e["v"])
        builder.label("spin")
        builder.write(1, 1)
        builder.goto("spin")
        report = lint_protocol(_protocol(builder.build()))
        [diag] = report.by_code("no-decide-path")
        assert diag.pc == 3

    def test_randomized_protocol_is_info_only(self):
        builder = ProgramBuilder()
        builder.flip("coin")
        builder.write(0, lambda e: e["coin"])
        builder.decide(lambda e: e["coin"])
        report = lint_protocol(_protocol(builder.build()))
        [diag] = report.by_code("coin-flips")
        assert diag.severity == "info"
        assert not report.blocking

    def test_anonymous_protocol_reports_once_without_pid(self):
        builder = ProgramBuilder()
        builder.write(0, 1)
        builder.write(1, 1)
        report = lint_protocol(_protocol(builder.build(), n=3))
        [diag] = report.by_code("fall-off-end")
        assert diag.pid is None

    def test_table_protocol_dead_state(self):
        protocol = TableProtocol(
            n=2,
            registers=1,
            initial={0: 0, 1: 0},
            rules={0: ("write", 0, 1), 7: ("write", 0, 0)},
            transitions={},
            defaults={0: 1, 7: 7},
            decisions={1: 1},
        )
        report = lint_protocol(protocol)
        [diag] = report.by_code("dead-instruction")
        assert diag.pc == 7

    def test_table_protocol_livelock_state(self):
        # State 2 self-loops (no rule target leads to the decider).
        protocol = TableProtocol(
            n=2,
            registers=1,
            initial={0: 0, 1: 0},
            rules={0: ("read", 0), 2: ("write", 0, 1)},
            transitions={(0, None): 1},
            defaults={0: 2, 2: 2},
            decisions={1: 0},
        )
        report = lint_protocol(protocol)
        [diag] = report.by_code("no-decide-path")
        assert diag.pc == 2

    def test_bundled_correct_protocols_are_not_blocked(self):
        for protocol in (CommitAdoptRounds(3), TasConsensus(2)):
            report = lint_protocol(protocol)
            assert not report.blocking, (protocol.name, report.codes)

    def test_bundled_broken_protocol_is_blocked(self):
        report = lint_protocol(SplitBrainConsensus(4))
        assert report.by_code("footprint-below-bound")
        assert report.blocking
