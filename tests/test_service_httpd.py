"""The HTTP surface, in-process: routes, refusals, the shutdown event.

A real ``ServiceServer`` on an ephemeral loopback port over a real
queue -- but inside this process, so these tests cover the handler and
server code directly (the subprocess daemon tests exercise the same
routes end-to-end but outside the coverage tracer's reach).
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.service import JobQueue, ResultLedger
from repro.service.httpd import MAX_BODY_BYTES, ServiceServer, _query_param


@pytest.fixture
def server(tmp_path):
    ledger = ResultLedger(tmp_path / "ledger.sqlite")
    queue = JobQueue(ledger, tmp_path, job_workers=1)
    queue.start()
    srv = ServiceServer(("127.0.0.1", 0), queue)
    srv.serve_in_thread()
    yield srv
    srv.shutdown()
    queue.drain(grace=30.0)


def request(server, path, payload=None, raw=None, timeout=10):
    url = f"http://127.0.0.1:{server.server_port}{path}"
    if payload is None and raw is None:
        req = urllib.request.Request(url)
    else:
        data = raw if raw is not None else json.dumps(payload).encode()
        req = urllib.request.Request(
            url, data=data, headers={"Content-Type": "application/json"}
        )
    with urllib.request.urlopen(req, timeout=timeout) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


def error_of(server, path, payload=None, raw=None):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        request(server, path, payload=payload, raw=raw)
    body = json.loads(excinfo.value.read().decode("utf-8"))
    return excinfo.value.code, body


class TestRoutes:
    def test_health_reports_pid_port_and_queue(self, server):
        import os

        status, health = request(server, "/health")
        assert status == 200
        assert health["ok"] is True
        assert health["pid"] == os.getpid()
        assert health["port"] == server.server_port
        assert health["queue"]["draining"] is False

    def test_submit_poll_and_list(self, server):
        status, accepted = request(
            server, "/jobs", {"kind": "absint", "spec": "rounds:2"}
        )
        assert status == 202 and accepted["state"] == "queued"
        key = accepted["job_key"]

        import time

        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            _, job = request(server, f"/jobs/{key}")
            if job["state"] not in ("queued", "running"):
                break
            time.sleep(0.02)
        assert job["state"] == "certified"
        (result,) = job["results"]
        assert result["kind"] == "absint"

        _, listing = request(server, "/jobs?state=certified")
        assert key in {j["job_key"] for j in listing["jobs"]}
        _, empty = request(server, "/jobs?state=error")
        assert empty["jobs"] == []

    def test_unknown_routes_are_404(self, server):
        assert error_of(server, "/nope")[0] == 404
        assert error_of(server, "/nope", payload={})[0] == 404
        code, body = error_of(server, "/jobs/no-such-key")
        assert code == 404
        assert "no job" in body["error"]

    def test_shutdown_route_sets_the_event(self, server):
        assert not server.shutdown_requested.is_set()
        status, body = request(server, "/shutdown", {})
        assert status == 202
        assert body["state"] == "draining"
        # The handler responds first, then signals; wait the race out.
        assert server.shutdown_requested.wait(timeout=10)


class TestRefusals:
    def test_bad_submission_is_a_400_with_the_reason(self, server):
        code, body = error_of(
            server, "/jobs", {"kind": "bake", "spec": "rounds:2"}
        )
        assert code == 400
        assert "unknown job kind" in body["error"]

    def test_non_json_body_is_a_400(self, server):
        code, body = error_of(server, "/jobs", raw=b"not json{")
        assert code == 400
        assert "not JSON" in body["error"]

    def test_bad_state_filter_is_a_400(self, server):
        code, body = error_of(server, "/jobs?state=bogus")
        assert code == 400
        assert "unknown job state" in body["error"]

    def test_oversized_body_is_refused(self, server):
        code, body = error_of(
            server, "/jobs", raw=b" " * (MAX_BODY_BYTES + 1)
        )
        assert code == 400
        assert "body over" in body["error"]


def test_query_param_parsing():
    assert _query_param("state=error&x=1", "state") == "error"
    assert _query_param("state=", "state") is None
    assert _query_param("", "state") is None
