"""Integration: traces -> histories -> the Wing-Gong checker.

An independent check on the perturbation adversary's verdicts: correct
counter executions linearize, the adversary's hidden-perturbation
witnesses do not.
"""

import random

import pytest

from repro.errors import ViolationError
from repro.model.linearizability import counter_spec, is_linearizable
from repro.model.system import System
from repro.perturbable import ArrayCounter, LossySharedCounter, covering_induction
from repro.perturbable.histories import counter_history


def run_and_extract(protocol, schedule):
    """Run schedule + reader solo; return the history."""
    system = System(protocol)
    config = system.initial_configuration([None] * protocol.n)
    config, trace = system.run(config, schedule, skip_halted=True)
    final, reader_trace = system.solo_run(config, protocol.reader, 100_000)
    full_trace = trace + reader_trace
    value = system.decision(final, protocol.reader)
    return counter_history(
        full_trace, protocol.workers, protocol.reader, value
    )


class TestArrayCounterHistories:
    def test_sequential_history_linearizes(self):
        protocol = ArrayCounter(4)
        history = run_and_extract(protocol, [0, 1, 2, 0])
        assert is_linearizable(history, counter_spec, 0) is not None

    def test_random_histories_linearize(self):
        protocol = ArrayCounter(4)
        rng = random.Random(7)
        for _ in range(15):
            schedule = [rng.randrange(3) for _ in range(rng.randint(0, 12))]
            history = run_and_extract(protocol, schedule)
            assert is_linearizable(history, counter_spec, 0) is not None

    def test_history_shape(self):
        protocol = ArrayCounter(3)
        history = run_and_extract(protocol, [0, 0, 1])
        incs = [op for op in history if op.name == "inc"]
        reads = [op for op in history if op.name == "read"]
        assert len(incs) == 3
        assert len(reads) == 1
        assert reads[0].result == 3


class TestLossyCounterHistories:
    def test_adversary_witness_does_not_linearize(self):
        protocol = LossySharedCounter(4, 2)
        system = System(protocol)
        try:
            covering_induction(
                system,
                workers=protocol.workers,
                reader=protocol.reader,
                ops_to_perturb=protocol.ops_to_perturb,
                completes_operation=protocol.completes_operation,
            )
            pytest.fail("expected a violation")
        except ViolationError as exc:
            witness = exc.witness
        config = system.initial_configuration([None] * 4)
        config, trace = system.run(config, witness, skip_halted=True)
        value = system.decision(config, protocol.reader)
        history = counter_history(
            trace, protocol.workers, protocol.reader, value
        )
        assert is_linearizable(history, counter_spec, 0) is None

    def test_conflict_free_lossy_history_still_linearizes(self):
        # Without slot contention the lossy counter behaves: only worker
        # 0 (slot 0) runs.
        protocol = LossySharedCounter(4, 2)
        history = run_and_extract(protocol, [0, 0, 0, 0])
        assert is_linearizable(history, counter_spec, 0) is not None
