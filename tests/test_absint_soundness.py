"""The soundness oracle: abstract reachability ⊇ concrete, everywhere.

Three layers of evidence that the interpreter never under-approximates:

* a hypothesis property drawing random table automata from the fuzz
  generator and walking every concrete configuration of every engine's
  shared exploration (the engines are byte-identical, so one sequential
  walk per input vector stands for the whole matrix -- the zoo gate in
  ``test_zoo_replay.py`` runs the full matrix with the soundness leg);
* the checked-in zoo, specimen by specimen;
* sabotage: an injected unsound analysis (the root state deleted from
  the abstract set) must be caught by the oracle, in the direct check,
  the differential matrix, and a whole campaign.

Plus the narrowing consumer: abstract value universes pick packed-row
field widths, with the codec's closed-universe intern check as the
live cross-check.
"""

import random
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fuzz import (
    ABSINT_UNSOUND,
    DEFAULT_ENGINES,
    EngineSpec,
    abstract_soundness_check,
    differential,
)
from repro.fuzz.generator import GeneratorConfig, generate_protocol
from repro.fuzz.zoo import Zoo
from repro.model.table import TableProtocol

ZOO_ROOT = Path(__file__).resolve().parent.parent / "corpus" / "zoo"

SPECIMENS = Zoo(ZOO_ROOT).specimens()
IDS = [s.digest[:12] for s in SPECIMENS]

SMALL = GeneratorConfig(n=(2, 3), states=(3, 6), registers=(1, 2))


@st.composite
def table_protocols(draw):
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    return generate_protocol(random.Random(seed), SMALL)


class TestSoundnessProperty:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(protocol=table_protocols())
    def test_abstract_reach_contains_concrete_reach(self, protocol):
        assert abstract_soundness_check(protocol, max_configs=3_000) is None

    def test_non_table_protocols_are_skipped(self):
        from repro.protocols.consensus import CommitAdoptRounds

        assert abstract_soundness_check(CommitAdoptRounds(2)) is None


class TestZooSoundness:
    @pytest.mark.parametrize("specimen", SPECIMENS, ids=IDS)
    def test_every_specimen_is_soundly_abstracted(self, specimen):
        assert abstract_soundness_check(specimen.build()) is None


class TestSabotage:
    def test_direct_sabotage_is_caught(self):
        protocol = SPECIMENS[0].build()
        divergence = abstract_soundness_check(protocol, sabotage=True)
        assert divergence is not None
        assert divergence.kind == "soundness"
        assert "outside the abstract state set" in divergence.detail

    def test_differential_matrix_catches_injected_unsoundness(self, worker_pool):
        protocol = SPECIMENS[0].build()
        engines = DEFAULT_ENGINES + (
            EngineSpec("sabotaged", sabotage=ABSINT_UNSOUND),
        )
        report = differential(
            protocol, engines, max_configs=5_000, pool=worker_pool
        )
        assert not report.ok
        [finding] = [d for d in report.divergences if d.kind == "soundness"]
        assert ABSINT_UNSOUND in finding.detail

    def test_campaign_with_inject_finds_the_divergence(self, tmp_path):
        from repro.fuzz.campaign import run_campaign, smoke_config

        config = smoke_config(
            count=2,
            inject=ABSINT_UNSOUND,
            zoo_root=tmp_path / "zoo",
        )
        result = run_campaign(config)
        assert result.divergent
        assert any(
            f["divergence"] == "soundness" and ABSINT_UNSOUND in f["detail"]
            for f in result.divergent
        )


class TestCampaignTags:
    def test_specimen_records_carry_absint_provenance(self, tmp_path):
        from repro.fuzz.campaign import (
            JOURNAL_FORMAT,
            run_campaign,
            smoke_config,
        )

        assert JOURNAL_FORMAT == 2
        journal = tmp_path / "journal.jsonl"
        config = smoke_config(count=4, zoo_root=tmp_path / "zoo")
        result = run_campaign(config, journal_path=journal)
        assert result.stopped == "complete"
        import json

        records = [
            json.loads(line)
            for line in journal.read_text().splitlines()
            if line
        ]
        specimens = [r for r in records if r.get("kind") == "specimen"]
        assert specimens
        for record in specimens:
            tag = record["absint"]
            assert set(tag) == {"refuted", "kinds", "writes"}
            assert isinstance(tag["refuted"], bool)

    def test_boring_reason_filters_steplessness_not_refutation(self):
        from repro.absint import static_certificate
        from repro.fuzz.campaign import boring_reason

        # Halted outright: every initial state is rule-less.
        stuck = TableProtocol(
            name="stuck", n=2, registers=1,
            initial={0: 0, 1: 1},
            rules={5: ("write", 0, 1)},
            transitions={(5, None): 5},
            defaults={},
            decisions={},
        )
        assert boring_reason(stuck) == "no-steps"

        # Statically refuted (constant-decides) yet takes real shared
        # steps: tagged, not dropped -- its decision plumbing is exactly
        # what the engines must agree on.
        biased = TableProtocol(
            name="biased", n=2, registers=1,
            initial={0: 0, 1: 1},
            rules={0: ("write", 0, 0), 1: ("write", 0, 1)},
            transitions={(0, None): 2, (1, None): 2},
            defaults={},
            decisions={2: 0},
        )
        certificate = static_certificate(biased)
        assert certificate.refuted
        assert boring_reason(biased, reach=certificate.overall) is None


class TestCodecNarrowing:
    def compiled(self, protocol):
        from repro.kernel.compiler import CompiledProgram
        from repro.model.system import System

        return CompiledProgram(System(protocol))

    def test_small_universe_narrows_to_byte_fields(self):
        protocol = generate_protocol(random.Random(7), SMALL)
        program = self.compiled(protocol)
        assert program.codec.field_bits == 8
        from repro.kernel.codec import FIELD_BITS

        assert program.codec.width_bytes < (
            FIELD_BITS * program.codec.field_count
        ) // 8

    def test_narrowed_kernel_agrees_with_every_engine(self, worker_pool):
        protocol = generate_protocol(random.Random(7), SMALL)
        report = differential(
            protocol, DEFAULT_ENGINES, max_configs=5_000, pool=worker_pool
        )
        assert report.ok, "\n".join(d.describe() for d in report.divergences)

    def test_out_of_universe_intern_fails_loudly(self):
        from repro.errors import KernelError

        protocol = generate_protocol(random.Random(7), SMALL)
        program = self.compiled(protocol)
        with pytest.raises(KernelError, match="narrowing unsound"):
            program.codec.value_id("never-abstractly-reachable")

    def test_wide_universe_keeps_wide_fields(self):
        # A dynamic (program) protocol has no abstract universes: the
        # codec must stay at the default width with open interning.
        from repro.kernel.codec import FIELD_BITS
        from repro.protocols.consensus import CommitAdoptRounds

        program = self.compiled(CommitAdoptRounds(2))
        assert program.codec.field_bits == FIELD_BITS
        program.codec.value_id("anything")  # open universe: no error
