"""``repro fuzz`` CLI: exit contract, determinism, zoo subcommands."""

import json

import pytest

from repro.cli import main

FAST = [
    "--count", "4", "--mutants", "1",
    "--max-configs", "1200", "--max-depth", "20",
]


def run_args(tmp_path, *extra, seed="5", zoo="z"):
    return [
        "fuzz", "run", "--seed", seed, "--zoo", str(tmp_path / zoo),
        *FAST, *extra,
    ]


class TestRunExitContract:
    def test_clean_campaign_exits_zero(self, tmp_path, capsys):
        assert main(run_args(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "fuzz campaign seed=5" in out

    def test_injected_divergence_exits_two(self, tmp_path, capsys):
        code = main(
            run_args(tmp_path, "--inject", "forget-value", seed="3")
        )
        assert code == 2
        out = capsys.readouterr().out
        assert "DIVERGENCE" in out
        assert "sabotaged" in out

    def test_bad_flag_exits_with_argparse_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["fuzz", "run", "--inject", "not-a-mode"])

    def test_unreadable_zoo_specimen_exits_one(self, tmp_path, capsys):
        zoo = tmp_path / "zoo"
        zoo.mkdir()
        (zoo / "deadbeef00000000.json").write_text("{not json")
        assert main(
            ["fuzz", "zoo", "replay", "--zoo", str(zoo)]
        ) == 1
        assert "error:" in capsys.readouterr().out


class TestRunDeterminism:
    def test_same_seed_same_journal_bytes(self, tmp_path):
        j1, j2 = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert main(
            run_args(tmp_path, "--journal", str(j1), zoo="za")
        ) == 0
        assert main(
            run_args(tmp_path, "--journal", str(j2), zoo="zb")
        ) == 0
        assert j1.read_bytes() == j2.read_bytes()

    def test_budget_flag_stops_and_stays_deterministic(self, tmp_path):
        j1, j2 = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        args = ["--budget", "8", "--count", "30"]
        assert main(
            run_args(tmp_path, "--journal", str(j1), *args, zoo="za")
        ) == 0
        assert main(
            run_args(tmp_path, "--journal", str(j2), *args, zoo="zb")
        ) == 0
        assert j1.read_bytes() == j2.read_bytes()
        summary = json.loads(j1.read_text().splitlines()[-1])
        assert summary["stopped"] == "budget"


class TestZooSubcommands:
    @pytest.fixture()
    def seeded_zoo(self, tmp_path):
        from repro.fuzz import Zoo
        from repro.model.table import TableProtocol

        zoo = Zoo(tmp_path / "zoo")
        zoo.add(
            TableProtocol(
                n=2, registers=1, initial={0: 0, 1: 1},
                rules={0: ("swap", 0, 0), 1: ("swap", 0, 1)},
                transitions={
                    (0, None): 2, (0, 1): 3, (1, None): 3, (1, 0): 2,
                },
                decisions={2: 0, 3: 1},
                name="cli-swap",
            ),
            {"tag": "cli-test"},
        )
        return zoo

    def test_zoo_list(self, seeded_zoo, capsys):
        assert main(["fuzz", "zoo", "list", "--zoo", str(seeded_zoo.root)]) == 0
        out = capsys.readouterr().out
        assert "cli-swap" in out and "cli-test" in out

    def test_zoo_replay_all_ok(self, seeded_zoo, capsys):
        assert main(
            ["fuzz", "zoo", "replay", "--zoo", str(seeded_zoo.root),
             "--max-configs", "2000"]
        ) == 0
        out = capsys.readouterr().out
        assert "0 divergent" in out

    def test_zoo_replay_by_digest_prefix(self, seeded_zoo, capsys):
        digest = seeded_zoo.specimens()[0].digest
        assert main(
            ["fuzz", "zoo", "replay", digest[:10],
             "--zoo", str(seeded_zoo.root), "--max-configs", "2000"]
        ) == 0
        assert "replayed 1 specimen" in capsys.readouterr().out

    def test_zoo_replay_unknown_prefix_exits_one(self, seeded_zoo, capsys):
        assert main(
            ["fuzz", "zoo", "replay", "ffffffffffff",
             "--zoo", str(seeded_zoo.root)]
        ) == 1
        assert "error:" in capsys.readouterr().out

    def test_zoo_replay_empty_zoo_is_ok(self, tmp_path, capsys):
        assert main(
            ["fuzz", "zoo", "replay", "--zoo", str(tmp_path / "none")]
        ) == 0
        assert "empty" in capsys.readouterr().out


def test_inject_campaign_persists_minimized_specimens(tmp_path, capsys):
    zoo = tmp_path / "zoo"
    code = main(
        ["fuzz", "run", "--seed", "3", "--count", "8", "--mutants", "1",
         "--max-configs", "1200", "--max-depth", "20",
         "--zoo", str(zoo), "--inject", "forget-value"]
    )
    assert code == 2
    assert any(zoo.glob("*.json"))
    capsys.readouterr()
    # The freshly persisted specimens replay clean on honest engines.
    assert main(
        ["fuzz", "zoo", "replay", "--zoo", str(zoo),
         "--max-configs", "2000"]
    ) == 0
