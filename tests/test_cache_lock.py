"""Two-process ValencyCache regression: concurrent writers lose nothing.

The bug this pins down: ``store()`` creates its entry as a dot-prefixed
``.tmp-*.json`` file before the atomic rename, and the eviction census
used ``rglob("*.json")`` -- which matches dotfiles -- so a concurrent
process's eviction pass could count (and unlink) another writer's
in-flight temp file, turning its ``os.replace`` into a crash and a lost
entry.  The fix serializes mutations with an advisory ``fcntl.flock``
on ``<base>/.lock`` and skips ``.tmp-*`` names in the census.

These tests drive two real processes against one ``--cache-dir``:
every stored entry must be loadable afterwards (none lost, none
corrupted), even with eviction pressure forcing the exact interleaving
the lock exists to prevent.
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.parallel.cache import ValencyCache

pytestmark = pytest.mark.skipif(
    os.name != "posix", reason="advisory file locks are POSIX-only"
)

# Each writer stores COUNT entries under its own fingerprint, then
# re-loads every one of them and reports the census as JSON on stdout.
WRITER = textwrap.dedent("""
    import json, sys
    from repro.parallel.cache import ValencyCache

    base, fingerprint, count, max_bytes = (
        sys.argv[1], sys.argv[2], int(sys.argv[3]), int(sys.argv[4])
    )
    cache = ValencyCache(base, max_bytes=max_bytes)
    body = {"decided": [[0, [0, 1]]], "complete": True, "negative": []}
    for index in range(count):
        cache.store(fingerprint, f"key-{index:04d}", dict(body, seq=index))
    survived = sum(
        1 for index in range(count)
        if cache.load(fingerprint, f"key-{index:04d}") is not None
    )
    print(json.dumps({
        "survived": survived,
        "corrupt": cache.counters["corrupt"],
    }))
""")


def run_writers(tmp_path, count, max_bytes):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", WRITER, str(tmp_path / "cache"),
             fingerprint, str(count), str(max_bytes)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )
        for fingerprint in ("aa" * 8, "bb" * 8)
    ]
    reports = []
    for proc in procs:
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, (
            f"writer crashed (the pre-lock bug's signature):\n{err}"
        )
        reports.append(json.loads(out))
    return reports


class TestTwoProcessRegression:
    def test_concurrent_writers_lose_no_entries(self, tmp_path):
        # Bound high enough that nothing is evicted: every one of the
        # 2 x 120 stores must then survive, byte-perfect.
        reports = run_writers(tmp_path, count=120, max_bytes=1 << 30)
        for report in reports:
            assert report["survived"] == 120
            assert report["corrupt"] == 0
        cache = ValencyCache(tmp_path / "cache")
        stats = cache.stats()
        assert stats["entries"] == 240
        assert stats["quarantined"] == 0

    def test_concurrent_writers_under_eviction_pressure(self, tmp_path):
        # A tight bound forces an eviction pass inside nearly every
        # store -- the exact window where an unlocked evictor could
        # unlink the other process's in-flight temp file.  Entries may
        # be legitimately evicted; what must never happen is a crashed
        # writer or a corrupt survivor.
        run_writers(tmp_path, count=80, max_bytes=4096)
        cache = ValencyCache(tmp_path / "cache")
        stats = cache.stats()
        assert stats["quarantined"] == 0
        # Whatever survived eviction must load cleanly.
        for fingerprint in ("aa" * 8, "bb" * 8):
            for index in range(80):
                cache.load(fingerprint, f"key-{index:04d}")
        assert cache.counters["corrupt"] == 0

    def test_no_tmp_litter_after_both_writers_exit(self, tmp_path):
        run_writers(tmp_path, count=40, max_bytes=1 << 30)
        litter = [
            p for p in (tmp_path / "cache").rglob("*")
            if p.is_file() and p.name.startswith(".tmp-")
        ]
        assert litter == []


class TestLockMechanics:
    def test_census_skips_in_flight_temp_files(self, tmp_path):
        cache = ValencyCache(tmp_path / "cache", max_bytes=1 << 30)
        cache.store("cc" * 8, "key-0", {"complete": True})
        shard = next(
            p for p in cache.root.iterdir() if p.is_dir()
        )
        # Another writer's in-flight temp file, as mkstemp names it.
        (shard / ".tmp-abcdef12.json").write_text("{}", encoding="utf-8")
        entries = [path.name for path, _ in cache._entries()]
        assert all(not name.startswith(".tmp-") for name in entries)
        stats = cache.stats()
        assert stats["entries"] == 1

    def test_eviction_never_unlinks_a_temp_file(self, tmp_path):
        cache = ValencyCache(tmp_path / "cache", max_bytes=1)
        cache.store("dd" * 8, "key-0", {"complete": True})
        shard = cache.root / ("dd" * 8)[:2]
        tmp = shard / ".tmp-feedface.json"
        tmp.write_text("{}", encoding="utf-8")
        cache.store("dd" * 8, "key-1", {"complete": True})  # evicts
        assert tmp.exists()

    def test_lock_marker_survives_clear(self, tmp_path):
        cache = ValencyCache(tmp_path / "cache")
        cache.store("ee" * 8, "key-0", {"complete": True})
        cache.clear()
        assert (cache.base / ".lock").exists()
        leftovers = [
            p for p in cache.base.rglob("*")
            if p.is_file() and p.name != ".lock"
        ]
        assert leftovers == []

    def test_write_lock_excludes_a_second_holder(self, tmp_path):
        import fcntl

        cache = ValencyCache(tmp_path / "cache")
        with cache._write_lock():
            fd = os.open(cache.base / ".lock", os.O_RDWR)
            try:
                with pytest.raises(OSError):
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            finally:
                os.close(fd)
        # Released on exit: a fresh holder succeeds.
        fd = os.open(cache.base / ".lock", os.O_RDWR)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        finally:
            os.close(fd)
