"""Unit tests for the incremental valency engine.

The engine (:mod:`repro.core.incremental`) memoises pure model
functions, so its entire contract is *equality with the direct
functions* -- every memoised answer must match what a fresh
``System``/``Protocol`` call returns -- plus the lifecycle rules of the
interning arena and the frontier-reuse index.
"""

import pickle

import pytest

from repro.core.incremental import IncrementalEngine
from repro.core.valency import ValencyOracle
from repro.errors import AdversaryError
from repro.model.configuration import Configuration, ConfigurationInterner
from repro.model.system import System
from repro.protocols.consensus import CommitAdoptRounds, TasConsensus


def walk(system, root, pid_cycle, steps):
    """Deterministic execution: cycle through ``pid_cycle`` skipping
    disabled processes; yields every configuration reached."""
    cursor = root
    for index in range(steps):
        pid = pid_cycle[index % len(pid_cycle)]
        if not system.enabled(cursor, pid):
            continue
        cursor, _ = system.step(cursor, pid)
        yield cursor, pid


class TestInterner:
    def test_structurally_equal_configs_intern_to_one_instance(self):
        interner = ConfigurationInterner()
        a = Configuration(("s", "t"), (0, 1), (0, 0))
        b = Configuration(("s", "t"), (0, 1), (0, 0))
        assert a is not b
        assert interner.intern(a) is interner.intern(b)
        assert interner.hits == 1 and interner.misses == 1

    def test_intern_parts_agrees_with_intern(self):
        interner = ConfigurationInterner()
        a = interner.intern(Configuration(("s",), (0,), (0,)))
        assert interner.intern_parts(("s",), (0,), (0,)) is a
        fresh = interner.intern_parts(("u",), (1,), (0,))
        assert interner.intern(Configuration(("u",), (1,), (0,))) is fresh

    def test_clear_bumps_generation(self):
        interner = ConfigurationInterner()
        config = interner.intern(Configuration(("s",), (0,), (0,)))
        assert config in interner
        generation = interner.generation
        interner.clear()
        assert interner.generation == generation + 1
        assert config not in interner

    def test_overflow_clears_wholesale(self):
        interner = ConfigurationInterner(max_size=2)
        for value in range(3):
            interner.intern(Configuration(("s",), (value,), (0,)))
        assert interner.generation == 1
        assert len(interner) == 1


class TestEngineAgreesWithSystem:
    """Every memoised function equals the direct one, hit or miss."""

    @pytest.mark.parametrize(
        "protocol, inputs",
        [
            (CommitAdoptRounds(3), [0, 1, 0]),
            (TasConsensus(2), [0, 1]),
        ],
        ids=["rounds:3", "tas:2"],
    )
    def test_step_poised_decisions_match(self, protocol, inputs):
        system = System(protocol)
        engine = IncrementalEngine(system)
        root = system.initial_configuration(inputs)
        n = protocol.n
        # Two passes over the same executions: the first populates the
        # memos, the second is served from them -- both must agree with
        # the direct system calls.
        for _ in range(2):
            for cycle in ([0], list(range(n)), [n - 1, 0]):
                cursor = engine.intern(root)
                for expected, pid in walk(system, root, cycle, 40):
                    assert engine.poised(cursor, pid) == system.poised(
                        cursor, pid
                    )
                    cursor = engine.step(cursor, pid)
                    assert cursor == expected
                    assert engine.decided_values(
                        cursor
                    ) == system.decided_values(cursor)
                    for p in range(n):
                        assert engine.decision(cursor, p) == system.decision(
                            cursor, p
                        )

    def test_successors_are_interned(self):
        system = System(CommitAdoptRounds(2))
        engine = IncrementalEngine(system)
        root = engine.intern(system.initial_configuration([0, 1]))
        first = engine.step(root, 0)
        second = engine.step(root, 0)
        assert first is second

    @pytest.mark.parametrize(
        "protocol, inputs",
        [
            (CommitAdoptRounds(3), [0, 1, 0]),
            (TasConsensus(2), [0, 1]),
        ],
        ids=["rounds:3", "tas:2"],
    )
    def test_query_key_matches_protocol(self, protocol, inputs):
        system = System(protocol)
        engine = IncrementalEngine(system)
        root = system.initial_configuration(inputs)
        pid_sets = [
            frozenset({0}),
            frozenset(range(protocol.n)),
        ]
        cursor = engine.intern(root)
        for _ in range(2):  # second pass hits the id-keyed memo
            for pids in pid_sets:
                assert engine.query_key(
                    cursor, pids
                ) == protocol.canonical_query_key(cursor, pids)
        for expected, pid in walk(system, root, [0, 1], 25):
            cursor = engine.step(cursor, pid)
            for pids in pid_sets:
                assert engine.query_key(
                    cursor, pids
                ) == protocol.canonical_query_key(cursor, pids)

    def test_clear_releases_and_stays_correct(self):
        system = System(TasConsensus(2))
        engine = IncrementalEngine(system)
        root = engine.intern(system.initial_configuration([0, 1]))
        succ = engine.step(root, 0)
        engine.clear()
        root = engine.intern(system.initial_configuration([0, 1]))
        assert engine.step(root, 0) == succ


class TestFrontierReuse:
    def test_exhausted_graph_serves_negative_proofs(self):
        pids = frozenset({0})
        engine = IncrementalEngine(System(TasConsensus(2)))
        engine.register_graph(pids, ["k1", "k2"], frozenset({0}))
        assert engine.graphs_registered == 1
        # Value decided in the graph: no negative proof.
        assert not engine.prove_cannot_decide(pids, "k1", frozenset({0}))
        # Value decided nowhere in the exhausted graph: proven negative.
        assert engine.prove_cannot_decide(pids, "k2", frozenset({1}))
        assert engine.negative_proofs == 1
        # Unknown key or other pid set: no proof.
        assert not engine.prove_cannot_decide(pids, "k3", frozenset({1}))
        assert not engine.prove_cannot_decide(
            frozenset({1}), "k1", frozenset({1})
        )
        assert engine.indexed_decided(pids, "k1") == frozenset({0})

    def test_eviction_is_fifo_and_bounded(self):
        engine = IncrementalEngine(
            System(TasConsensus(2)), max_index_nodes=3
        )
        pids = frozenset({0})
        engine.register_graph(pids, ["a", "b"], frozenset({0}))
        engine.register_graph(pids, ["c", "d"], frozenset({1}))
        assert engine.index_nodes <= 3
        assert engine.indexed_decided(pids, "a") is None  # evicted
        assert engine.indexed_decided(pids, "c") == frozenset({1})

    def test_oracle_seeds_negatives_from_exhausted_graphs(self):
        system = System(TasConsensus(2))
        oracle = ValencyOracle(system, solo_probe=False)
        root = system.initial_configuration([0, 1])
        p0 = frozenset({0})
        # First negative query exhausts the {p0}-only graph from the
        # root and registers it.
        assert not oracle.can_decide(root, p0, 1)
        assert oracle._engine.graphs_registered >= 1
        # A successor inside that graph: the same negative is served by
        # the frontier-reuse index, no new search.
        inside, _ = system.step(root, 0)
        explorations = oracle.stats["explorations"]
        assert not oracle.can_decide(inside, p0, 1)
        assert oracle.stats["incremental.seeded"] >= 1
        assert oracle.stats["explorations"] == explorations
        oracle.close()

    def test_truncated_graphs_are_never_registered(self):
        system = System(CommitAdoptRounds(2))
        oracle = ValencyOracle(
            system, strict=False, max_configs=5, max_depth=3,
            solo_probe=False,
        )
        root = system.initial_configuration([0, 1])
        oracle.can_decide(root, frozenset({0, 1}), "no-such-value")
        assert oracle._engine.graphs_registered == 0
        oracle.close()


class TestOracleLifecycle:
    def test_incremental_counters_present_after_run(self):
        system = System(TasConsensus(2))
        oracle = ValencyOracle(system)
        root = system.initial_configuration([0, 1])
        oracle.can_decide(root, frozenset({0, 1}), 0)
        assert oracle.stats["incremental.cold"] >= 0
        assert oracle.stats["intern.hits"] + oracle.stats["intern.misses"] > 0
        oracle.close()

    def test_manual_close_rejects_further_queries(self):
        system = System(TasConsensus(2))
        oracle = ValencyOracle(system)
        root = system.initial_configuration([0, 1])
        assert oracle.can_decide(root, frozenset({0}), 0)
        oracle.close()
        oracle.close()  # idempotent
        with pytest.raises(AdversaryError):
            oracle.can_decide(root, frozenset({0}), 0)

    def test_context_manager_close_rejects_further_queries(self):
        system = System(TasConsensus(2))
        root = system.initial_configuration([0, 1])
        with ValencyOracle(system) as oracle:
            assert oracle.can_decide(root, frozenset({0}), 0)
        with pytest.raises(AdversaryError):
            oracle.can_decide(root, frozenset({0}), 0)


class TestCachedHashPickling:
    """Cached structural hashes must never travel between processes:
    ``hash()`` is salted per interpreter, and configurations are shipped
    to spawned workers by pickle."""

    def test_configuration_round_trip_drops_cached_hash(self):
        config = Configuration(("s", "t"), (0, 1), (0, 0))
        hash(config)  # populate the cache
        assert "_hash" in config.__dict__
        clone = pickle.loads(pickle.dumps(config))
        assert "_hash" not in clone.__dict__
        assert clone == config

    def test_proc_state_round_trip_drops_cached_hash(self):
        system = System(CommitAdoptRounds(2))
        config = system.initial_configuration([0, 1])
        state = config.states[0]
        hash(state)
        assert "_hash" in state.__dict__
        clone = pickle.loads(pickle.dumps(state))
        assert "_hash" not in clone.__dict__
        assert clone == state
