"""The result ledger: schema versioning, the state contract, provenance.

The job-state machine must mirror the CLI exit-code contract exactly
(0/2/3/1 <-> certified/violation/partial/error), a ledger written by a
newer service must be refused cleanly, and the export must speak the
``BENCH_*.json`` shape the CI gates already parse.
"""

import json
import sqlite3

import pytest

from repro.errors import ServiceError
from repro.service import (
    EXIT_BY_STATE,
    JOB_STATES,
    LEDGER_SCHEMA_VERSION,
    STATE_BY_EXIT,
    ResultLedger,
)


@pytest.fixture
def ledger(tmp_path):
    return ResultLedger(tmp_path / "ledger.sqlite")


class TestStateContract:
    def test_states_mirror_the_exit_code_contract(self):
        assert STATE_BY_EXIT == {
            0: "certified", 2: "violation", 3: "partial", 1: "error",
        }
        assert EXIT_BY_STATE == {
            "certified": 0, "violation": 2, "partial": 3, "error": 1,
        }
        for state in STATE_BY_EXIT.values():
            assert state in JOB_STATES

    @pytest.mark.parametrize("exit_code", [0, 2, 3, 1])
    def test_finish_maps_each_exit_code(self, ledger, exit_code):
        key = ledger.submit_job("adversary", "rounds:2")
        ledger.mark_running(key)
        state = ledger.finish_job(key, exit_code, "done")
        assert state == STATE_BY_EXIT[exit_code]
        job = ledger.job(key)
        assert job["state"] == state
        assert job["exit_code"] == exit_code
        assert job["finished_at"] is not None

    @pytest.mark.parametrize("exit_code", [-1, 4, 42, 127])
    def test_exit_codes_outside_the_contract_are_refused(
        self, ledger, exit_code
    ):
        key = ledger.submit_job("adversary", "rounds:2")
        with pytest.raises(ServiceError, match="0/2/3/1"):
            ledger.finish_job(key, exit_code)

    def test_unknown_state_filter_is_refused(self, ledger):
        with pytest.raises(ServiceError, match="unknown job state"):
            ledger.jobs(state="done")


class TestJobLifecycle:
    def test_submit_records_params_and_checkpoint(self, ledger):
        key = ledger.submit_job(
            "adversary", "rounds:3",
            params={"max_depth": 9}, checkpoint="/tmp/x.ckpt",
        )
        job = ledger.job(key)
        assert job["state"] == "queued"
        assert job["params"] == {"max_depth": 9}
        assert job["checkpoint"] == "/tmp/x.ckpt"
        assert job["attempts"] == 0

    def test_mark_running_counts_attempts(self, ledger):
        key = ledger.submit_job("fuzz", "generated")
        ledger.mark_running(key)
        ledger.mark_running(key)
        assert ledger.job(key)["attempts"] == 2

    def test_requeue_interrupted_preserves_checkpoints(self, ledger):
        interrupted = ledger.submit_job(
            "adversary", "rounds:3", checkpoint="/tmp/a.ckpt"
        )
        finished = ledger.submit_job("adversary", "rounds:2")
        ledger.mark_running(interrupted)
        ledger.mark_running(finished)
        ledger.finish_job(finished, 0)
        assert ledger.requeue_interrupted() == [interrupted]
        job = ledger.job(interrupted)
        assert job["state"] == "queued"
        assert job["checkpoint"] == "/tmp/a.ckpt"
        # The finished job is untouched.
        assert ledger.job(finished)["state"] == "certified"

    def test_pending_jobs_in_submission_order(self, ledger):
        keys = [ledger.submit_job("absint", "rounds:2") for _ in range(3)]
        assert [j["job_key"] for j in ledger.pending_jobs()] == keys

    def test_missing_job_is_none(self, ledger):
        assert ledger.job("no-such-key") is None


class TestResults:
    def test_provenance_round_trips(self, ledger):
        key = ledger.submit_job("adversary", "rounds:2")
        ledger.add_result(
            key, kind="adversary", protocol="rounds:2", exit_code=0,
            protocol_digest="abc123", n=2, registers=1, engine="compiled",
            workers=2, por=True, incremental=False, seed=7,
            certificate='{"kind": "cert"}', witness=[0, 1, 0],
            metrics={"oracle.queries": 5}, trace_journal="/tmp/t.jsonl",
            elapsed=1.25,
        )
        row = ledger.results(job_key=key)[0]
        assert row["protocol_digest"] == "abc123"
        assert row["registers"] == 1
        assert (row["por"], row["incremental"]) == (1, 0)
        assert json.loads(row["witness"]) == [0, 1, 0]
        assert json.loads(row["metrics"]) == {"oracle.queries": 5}
        assert row["certificate"] == '{"kind": "cert"}'

    def test_filters_compose(self, ledger):
        a = ledger.submit_job("adversary", "rounds:2")
        b = ledger.submit_job("absint", "rounds:3")
        ledger.add_result(a, kind="adversary", protocol="rounds:2",
                          exit_code=0)
        ledger.add_result(b, kind="absint", protocol="rounds:3",
                          exit_code=0)
        assert len(ledger.results()) == 2
        assert len(ledger.results(kind="absint")) == 1
        assert len(ledger.results(protocol="rounds:2")) == 1
        assert ledger.results(job_key=b)[0]["kind"] == "absint"

    def test_trend_aggregates_per_protocol_engine(self, ledger):
        key = ledger.submit_job("adversary", "rounds:2")
        for exit_code, elapsed in ((0, 2.0), (0, 1.0), (3, 5.0)):
            ledger.add_result(
                key, kind="adversary", protocol="rounds:2",
                exit_code=exit_code, engine="compiled", elapsed=elapsed,
                registers=1 if exit_code == 0 else None,
            )
        (row,) = ledger.trend()
        assert row["runs"] == 3
        assert row["certified"] == 2
        assert row["partials"] == 1
        assert row["best_elapsed"] == 1.0
        assert row["last_elapsed"] == 5.0  # latest row, not best
        assert row["registers"] == 1  # latest certificate's count


class TestExport:
    def test_export_speaks_the_bench_shape(self, ledger):
        key = ledger.submit_job("adversary", "rounds:2")
        ledger.mark_running(key)
        ledger.finish_job(key, 0)
        ledger.add_result(key, kind="adversary", protocol="rounds:2",
                          exit_code=0, engine="compiled", elapsed=0.5,
                          registers=1)
        payload = ledger.export(bench="service")
        assert payload["bench"] == "service"
        assert payload["schema_version"] == LEDGER_SCHEMA_VERSION
        assert payload["jobs"]["certified"] == 1
        (result,) = payload["results"]
        assert result["workload"] == "rounds:2"
        assert result["engine"] == "compiled"
        assert result["certified"] == 1
        # Every value is JSON-native and flat, like every BENCH file.
        assert json.loads(json.dumps(payload)) == payload
        for value in result.values():
            assert value is None or isinstance(value, (bool, int, float, str))


class TestSchemaVersioning:
    def test_fresh_ledger_is_current(self, ledger):
        assert ledger.schema_version() == LEDGER_SCHEMA_VERSION

    def test_reopen_is_idempotent(self, tmp_path):
        path = tmp_path / "ledger.sqlite"
        key = ResultLedger(path).submit_job("absint", "rounds:2")
        reopened = ResultLedger(path)
        assert reopened.job(key) is not None
        assert reopened.schema_version() == LEDGER_SCHEMA_VERSION

    def test_newer_schema_is_refused_cleanly(self, tmp_path):
        path = tmp_path / "future.sqlite"
        ResultLedger(path)
        with sqlite3.connect(path) as conn:
            conn.execute(
                "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                (str(LEDGER_SCHEMA_VERSION + 5),),
            )
        with pytest.raises(ServiceError, match=r"schema v6 > supported v1"):
            ResultLedger(path)

    def test_older_schema_without_migration_is_refused(self, tmp_path):
        path = tmp_path / "ancient.sqlite"
        ResultLedger(path)
        with sqlite3.connect(path) as conn:
            conn.execute(
                "UPDATE meta SET value = '0' WHERE key = 'schema_version'"
            )
        with pytest.raises(ServiceError, match="no migration"):
            ResultLedger(path)

    def test_migration_chain_upgrades_one_version_at_a_time(
        self, tmp_path, monkeypatch
    ):
        import repro.service.db as db

        path = tmp_path / "old.sqlite"
        ResultLedger(path)
        with sqlite3.connect(path) as conn:
            conn.execute(
                "UPDATE meta SET value = '0' WHERE key = 'schema_version'"
            )
        monkeypatch.setitem(
            db.MIGRATIONS, 0,
            ["CREATE TABLE IF NOT EXISTS migrated_marker (x INTEGER)"],
        )
        ledger = ResultLedger(path)
        assert ledger.schema_version() == LEDGER_SCHEMA_VERSION
        with sqlite3.connect(path) as conn:
            tables = {
                row[0] for row in conn.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'table'"
                )
            }
        assert "migrated_marker" in tables
