"""Unit tests for the core model: operations, registers, env, programs."""

import pytest

from repro.errors import InvalidOperationError, ProgramError
from repro.model import (
    CompareAndSwap,
    Env,
    FetchAndAdd,
    ObjectKind,
    ProgramBuilder,
    ProgramProtocol,
    Read,
    Swap,
    System,
    TestAndSet,
    Write,
    apply_operation,
    cas_object,
    faa_object,
    is_historyless,
    register,
    swap_register,
    tas_object,
)
from repro.model.process import DecidedState


class TestApplyOperation:
    def test_register_read_returns_contents(self):
        state, response = apply_operation(ObjectKind.REGISTER, 42, Read(0))
        assert state == 42
        assert response == 42

    def test_register_write_overwrites(self):
        state, response = apply_operation(ObjectKind.REGISTER, 1, Write(0, 9))
        assert state == 9
        assert response is None

    def test_swap_returns_old_value(self):
        state, response = apply_operation(ObjectKind.SWAP, "old", Swap(0, "new"))
        assert state == "new"
        assert response == "old"

    def test_tas_sets_and_returns_previous(self):
        state, response = apply_operation(ObjectKind.TEST_AND_SET, 0, TestAndSet(0))
        assert state == 1
        assert response == 0
        state, response = apply_operation(ObjectKind.TEST_AND_SET, 1, TestAndSet(0))
        assert state == 1
        assert response == 1

    def test_cas_succeeds_on_match(self):
        state, response = apply_operation(ObjectKind.CAS, 5, CompareAndSwap(0, 5, 7))
        assert state == 7
        assert response == 5

    def test_cas_fails_on_mismatch(self):
        state, response = apply_operation(ObjectKind.CAS, 6, CompareAndSwap(0, 5, 7))
        assert state == 6
        assert response == 6

    def test_faa_adds_and_returns_previous(self):
        state, response = apply_operation(ObjectKind.FETCH_AND_ADD, 10, FetchAndAdd(0, 3))
        assert state == 13
        assert response == 10

    def test_write_to_cas_object_rejected(self):
        with pytest.raises(InvalidOperationError):
            apply_operation(ObjectKind.CAS, 0, Write(0, 1))

    def test_read_allowed_on_all_kinds(self):
        for kind in ObjectKind:
            state, response = apply_operation(kind, 3, Read(0))
            assert (state, response) == (3, 3)


class TestHistoryless:
    def test_registers_swap_tas_are_historyless(self):
        assert is_historyless(ObjectKind.REGISTER)
        assert is_historyless(ObjectKind.SWAP)
        assert is_historyless(ObjectKind.TEST_AND_SET)

    def test_cas_and_faa_are_not(self):
        assert not is_historyless(ObjectKind.CAS)
        assert not is_historyless(ObjectKind.FETCH_AND_ADD)

    def test_spec_helpers(self):
        assert register(3).kind is ObjectKind.REGISTER
        assert swap_register().kind is ObjectKind.SWAP
        assert tas_object().initial == 0
        assert cas_object(1).initial == 1
        assert faa_object(2).initial == 2


class TestEnv:
    def test_set_is_persistent(self):
        a = Env({"x": 1})
        b = a.set("y", 2)
        assert "y" not in a
        assert b["x"] == 1 and b["y"] == 2

    def test_set_same_value_returns_self(self):
        a = Env({"x": 1})
        assert a.set("x", 1) is a

    def test_equality_and_hash_are_structural(self):
        assert Env({"a": 1, "b": 2}) == Env({"b": 2, "a": 1})
        assert hash(Env({"a": 1})) == hash(Env({"a": 1}))

    def test_update(self):
        a = Env({"x": 1}).update({"y": 2, "x": 5})
        assert dict(a) == {"x": 5, "y": 2}


def write_then_decide_protocol():
    """One process writes its input to register 0, reads it, decides it."""
    builder = ProgramBuilder()
    builder.write(0, lambda e: e["v"])
    builder.read(0, "seen")
    builder.decide(lambda e: e["seen"])
    program = builder.build()
    return ProgramProtocol(
        "write-then-decide",
        1,
        [register(None)],
        [program],
        lambda pid, value: {"v": value},
    )


class TestProgramProtocol:
    def test_solo_run_decides_input(self):
        protocol = write_then_decide_protocol()
        system = System(protocol)
        config = system.initial_configuration([7])
        config, trace = system.solo_run(config, 0, max_steps=10)
        assert system.decision(config, 0) == 7
        assert [type(step.op).__name__ for step in trace] == ["Write", "Read"]

    def test_poised_skips_local_instructions(self):
        builder = ProgramBuilder()
        builder.assign("x", 1)
        builder.assign("y", lambda e: e["x"] + 1)
        builder.write(0, lambda e: e["y"])
        builder.halt()
        protocol = ProgramProtocol(
            "locals", 1, [register()], [builder.build()], lambda pid, v: {}
        )
        system = System(protocol)
        config = system.initial_configuration([None])
        op = system.poised(config, 0)
        assert isinstance(op, Write)
        assert op.value == 2

    def test_local_infinite_loop_raises(self):
        builder = ProgramBuilder()
        builder.label("spin")
        builder.goto("spin")
        with pytest.raises(ProgramError):
            ProgramProtocol(
                "spin", 1, [register()], [builder.build()], lambda pid, v: {}
            ).initial_state(0, None)

    def test_branching_loop_counts(self):
        builder = ProgramBuilder()
        builder.assign("i", 0)
        builder.label("loop")
        builder.write(0, lambda e: e["i"])
        builder.assign("i", lambda e: e["i"] + 1)
        builder.branch_if(lambda e: e["i"] < 3, "loop")
        builder.decide(lambda e: e["i"])
        protocol = ProgramProtocol(
            "loop3", 1, [register()], [builder.build()], lambda pid, v: {}
        )
        system = System(protocol)
        config = system.initial_configuration([None])
        config, trace = system.solo_run(config, 0, max_steps=20)
        assert system.decision(config, 0) == 3
        assert len(trace) == 3
        assert config.memory[0] == 2

    def test_decided_state_has_no_step(self):
        protocol = write_then_decide_protocol()
        assert protocol.poised(0, DecidedState(5)) is None
        assert protocol.decision(0, DecidedState(5)) == 5

    def test_undefined_label_raises(self):
        builder = ProgramBuilder()
        builder.goto("nowhere")
        with pytest.raises(ProgramError):
            ProgramProtocol(
                "bad", 1, [register()], [builder.build()], lambda pid, v: {}
            ).initial_state(0, None)

    def test_duplicate_label_raises(self):
        builder = ProgramBuilder()
        builder.label("a")
        with pytest.raises(ProgramError):
            builder.label("a")

    def test_program_count_must_match_n(self):
        builder = ProgramBuilder()
        builder.halt()
        with pytest.raises(ProgramError):
            ProgramProtocol(
                "bad", 2, [register()], [builder.build()], lambda pid, v: {}
            )


class TestSystem:
    def test_initial_configuration_shapes(self):
        protocol = write_then_decide_protocol()
        system = System(protocol)
        config = system.initial_configuration([0])
        assert config.n == 1
        assert config.memory == (None,)
        assert config.coins == (0,)

    def test_step_on_halted_raises(self):
        protocol = write_then_decide_protocol()
        system = System(protocol)
        config = system.initial_configuration([1])
        config, _ = system.solo_run(config, 0, max_steps=10)
        from repro.errors import ProcessHaltedError

        with pytest.raises(ProcessHaltedError):
            system.step(config, 0)

    def test_run_skip_halted(self):
        protocol = write_then_decide_protocol()
        system = System(protocol)
        config = system.initial_configuration([1])
        config, trace = system.run(config, [0] * 10, skip_halted=True)
        assert len(trace) == 2

    def test_wrong_input_count_raises(self):
        from repro.errors import ModelError

        protocol = write_then_decide_protocol()
        with pytest.raises(ModelError):
            System(protocol).initial_configuration([1, 2])

    def test_covered_register(self):
        protocol = write_then_decide_protocol()
        system = System(protocol)
        config = system.initial_configuration([1])
        assert system.covered_register(config, 0) == 0
        config, _ = system.step(config, 0)
        # Now poised at the read: reads cover nothing.
        assert system.covered_register(config, 0) is None

    def test_replay_determinism(self):
        protocol = write_then_decide_protocol()
        system = System(protocol)
        c1, t1 = system.run(system.initial_configuration([3]), [0, 0])
        c2, t2 = system.run(system.initial_configuration([3]), [0, 0])
        assert c1 == c2
        assert t1 == t2
        assert hash(c1) == hash(c2)


class TestIndistinguishability:
    def test_differs_only_in_other_process_state(self):
        builder = ProgramBuilder()
        builder.read(0, "x")
        builder.decide(lambda e: e["x"])
        program = builder.build()
        protocol = ProgramProtocol(
            "two-readers",
            2,
            [register(0)],
            [program, program],
            lambda pid, v: {"v": v},
        )
        system = System(protocol)
        base = system.initial_configuration([0, 1])
        moved, _ = system.step(base, 1)
        # Process 0 cannot distinguish: same memory (reads do not write),
        # same own state.
        assert base.indistinguishable_to(moved, [0])
        assert not base.indistinguishable_to(moved, [1])
        assert not base.indistinguishable_to(moved, [0, 1])
