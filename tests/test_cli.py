"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main, parse_protocol
from repro.protocols.consensus import CommitAdoptRounds, KSetPartition


class TestParseProtocol:
    def test_families(self):
        assert isinstance(parse_protocol("rounds:4"), CommitAdoptRounds)
        assert parse_protocol("rounds:4").n == 4
        kset = parse_protocol("kset:5:2")
        assert isinstance(kset, KSetPartition)
        assert kset.num_objects == 4

    def test_unknown_family_exits(self):
        with pytest.raises(SystemExit):
            parse_protocol("paxos:3")

    def test_bad_sizes_exit(self):
        with pytest.raises(SystemExit):
            parse_protocol("rounds:many")
        with pytest.raises(SystemExit):
            parse_protocol("shared:3")  # missing k


class TestCommands:
    def test_protocols_lists_families(self, capsys):
        assert main(["protocols"]) == 0
        out = capsys.readouterr().out
        assert "rounds:n" in out
        assert "counter:n" in out

    def test_adversary_writes_valid_certificate(self, tmp_path, capsys):
        path = tmp_path / "cert.json"
        code = main(["adversary", "rounds:3", "--out", str(path)])
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["kind"] == "space-bound"
        assert len(payload["registers"]) == 2
        assert main(["validate", str(path), "rounds:3"]) == 0
        out = capsys.readouterr().out
        assert "valid:" in out

    def test_validate_wrong_protocol_fails(self, tmp_path, capsys):
        path = tmp_path / "cert.json"
        main(["adversary", "rounds:3", "--out", str(path)])
        # A certificate for rounds:3 replayed against shared:3:1 must
        # fail (different register layout / behaviour).
        code = main(["validate", str(path), "shared:3:1"])
        assert code == 1
        assert "INVALID" in capsys.readouterr().out

    def test_check_ok_protocol(self, capsys):
        assert main(["check", "rounds:2", "--random-runs", "3"]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_check_broken_protocol(self, capsys):
        assert main(["check", "split-brain:2"]) == 1
        out = capsys.readouterr().out
        assert "VIOLATION" in out
        assert "witness schedule" in out

    def test_adversary_on_broken_protocol_reports(self, capsys):
        code = main(["adversary", "split-brain:3"])
        assert code == 2
        assert "failed" in capsys.readouterr().out or True

    def test_perturb_counter(self, tmp_path, capsys):
        path = tmp_path / "jtt.json"
        assert main(["perturb", "counter:5", "--out", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["kind"] == "jtt-covering"
        assert len(payload["covered"]) == 4

    def test_perturb_lossy_counter_violates(self, capsys):
        assert main(["perturb", "lossy-counter:4:2"]) == 2
        assert "linearizability" in capsys.readouterr().out

    def test_mutex_table(self, capsys):
        assert main(["mutex", "4", "8"]) == 0
        out = capsys.readouterr().out
        assert "tournament" in out and "peterson" in out

    def test_audit_table(self, capsys):
        assert main(["audit", "rounds:2", "split-brain:2"]) == 0
        out = capsys.readouterr().out
        assert "space audit" in out
        assert "agreement" in out
