"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main, parse_protocol
from repro.protocols.consensus import CommitAdoptRounds, KSetPartition


class TestParseProtocol:
    def test_families(self):
        assert isinstance(parse_protocol("rounds:4"), CommitAdoptRounds)
        assert parse_protocol("rounds:4").n == 4
        kset = parse_protocol("kset:5:2")
        assert isinstance(kset, KSetPartition)
        assert kset.num_objects == 4

    def test_unknown_family_exits(self):
        with pytest.raises(SystemExit):
            parse_protocol("paxos:3")

    def test_bad_sizes_exit(self):
        with pytest.raises(SystemExit):
            parse_protocol("rounds:many")
        with pytest.raises(SystemExit):
            parse_protocol("shared:3")  # missing k


class TestCommands:
    def test_protocols_lists_families(self, capsys):
        assert main(["protocols"]) == 0
        out = capsys.readouterr().out
        assert "rounds:n" in out
        assert "counter:n" in out

    def test_adversary_writes_valid_certificate(self, tmp_path, capsys):
        path = tmp_path / "cert.json"
        code = main(["adversary", "rounds:3", "--out", str(path)])
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["kind"] == "space-bound"
        assert len(payload["registers"]) == 2
        assert main(["validate", str(path), "rounds:3"]) == 0
        out = capsys.readouterr().out
        assert "valid:" in out

    def test_validate_wrong_protocol_fails(self, tmp_path, capsys):
        path = tmp_path / "cert.json"
        main(["adversary", "rounds:3", "--out", str(path)])
        # A certificate for rounds:3 replayed against shared:3:1 must
        # fail (different register layout / behaviour).
        code = main(["validate", str(path), "shared:3:1"])
        assert code == 2
        assert "INVALID" in capsys.readouterr().out

    def test_check_ok_protocol(self, capsys):
        assert main(["check", "rounds:2", "--random-runs", "3"]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_check_broken_protocol(self, capsys):
        assert main(["check", "split-brain:2"]) == 2
        out = capsys.readouterr().out
        assert "VIOLATION" in out
        assert "witness schedule" in out

    def test_adversary_on_broken_protocol_reports(self, capsys):
        code = main(["adversary", "split-brain:3"])
        assert code == 2
        assert "failed" in capsys.readouterr().out or True

    def test_perturb_counter(self, tmp_path, capsys):
        path = tmp_path / "jtt.json"
        assert main(["perturb", "counter:5", "--out", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["kind"] == "jtt-covering"
        assert len(payload["covered"]) == 4

    def test_perturb_lossy_counter_violates(self, capsys):
        assert main(["perturb", "lossy-counter:4:2"]) == 2
        assert "linearizability" in capsys.readouterr().out

    def test_mutex_table(self, capsys):
        assert main(["mutex", "4", "8"]) == 0
        out = capsys.readouterr().out
        assert "tournament" in out and "peterson" in out

    def test_audit_table(self, capsys):
        # A broken protocol in the audit makes the run exit 2.
        assert main(["audit", "rounds:2", "split-brain:2"]) == 2
        out = capsys.readouterr().out
        assert "space audit" in out
        assert "agreement" in out

    def test_audit_all_ok_exits_zero(self, capsys):
        assert main(["audit", "rounds:2", "tas:2"]) == 0
        assert "pinned" in capsys.readouterr().out


class TestExitCodeContract:
    """0 success, 2 violation, 3 budget/limit, 1 unexpected -- and no
    raw tracebacks for the expected failures."""

    def test_success_is_zero(self):
        assert main(["adversary", "rounds:2"]) == 0

    def test_violation_is_two(self):
        assert main(["check", "split-brain:2"]) == 2

    def test_budget_exhaustion_is_three(self, capsys):
        code = main(["adversary", "rounds:3", "--budget", "5"])
        assert code == 3
        out = capsys.readouterr().out
        assert "partial progress" in out
        assert "Traceback" not in out

    def test_no_traceback_on_violation(self, capsys):
        main(["adversary", "split-brain:3"])
        captured = capsys.readouterr()
        assert "Traceback" not in captured.out
        assert "Traceback" not in captured.err


class TestFaultsCommand:
    def test_quick_campaign_passes(self, capsys):
        assert main(["faults", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "crash campaign" in out
        assert "register-fault campaign" in out
        assert "ok:" in out

    def test_broken_protocol_fails_campaign(self, capsys):
        code = main(["faults", "split-brain:2", "--quick"])
        assert code == 2
        assert "FAIL" in capsys.readouterr().out


class TestBudgetAndResumeFlags:
    def test_checkpoint_written_then_resumed(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt.json"
        code = main(
            ["adversary", "rounds:3", "--budget", "5", "--resume", str(ckpt)]
        )
        assert code == 3
        assert ckpt.exists()
        assert "checkpoint written" in capsys.readouterr().out

        code = main(["adversary", "rounds:3", "--resume", str(ckpt)])
        assert code == 0
        out = capsys.readouterr().out
        assert "resuming:" in out
        assert "pins" in out

    def test_resume_refuses_wrong_protocol(self, tmp_path):
        ckpt = tmp_path / "ckpt.json"
        main(["adversary", "rounds:3", "--budget", "5", "--resume", str(ckpt)])
        with pytest.raises(SystemExit):
            main(["adversary", "tas:2", "--resume", str(ckpt)])

    def test_audit_budget_flag_reports_partial(self, capsys):
        code = main(["audit", "rounds:3", "--budget", "5"])
        assert code == 3
        assert "budget (" in capsys.readouterr().out

    def test_invalid_budget_rejected_cleanly(self, capsys):
        with pytest.raises(SystemExit):
            main(["adversary", "rounds:3", "--budget", "0"])

    def test_stalled_resume_warns(self, tmp_path, capsys):
        """A budget below the next query's cost makes no progress; the
        CLI must say so instead of silently looping."""
        ckpt = tmp_path / "ckpt.json"
        args = ["adversary", "rounds:3", "--budget", "5",
                "--resume", str(ckpt)]
        codes = [main(args) for _ in range(3)]
        assert codes == [3, 3, 3]
        assert "no progress" in capsys.readouterr().out
