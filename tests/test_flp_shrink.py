"""Tests for the FLP bivalence extension and the witness shrinker."""

import pytest

from repro.errors import AdversaryError
from repro.analysis.flp import extend_bivalence, undecided_forever_demo
from repro.analysis.shrink import (
    agreement_violated,
    replay_holds,
    shrink_witness,
)
from repro.core.valency import ValencyOracle
from repro.model.system import System
from repro.protocols.consensus import (
    CasConsensus,
    CommitAdoptRounds,
    SplitBrainConsensus,
)


class TestBivalenceExtension:
    def test_rounds_protocol_delayed_100_steps(self):
        system = System(CommitAdoptRounds(2))
        schedule = undecided_forever_demo(
            system, [0, 1], frozenset({0, 1}), steps=100
        )
        assert len(schedule) == 100
        # Replay: genuinely nobody decided.
        config = system.initial_configuration([0, 1])
        config, _ = system.run(config, schedule)
        assert not system.decided_values(config)

    def test_extension_uses_both_processes(self):
        system = System(CommitAdoptRounds(2))
        schedule = undecided_forever_demo(
            system, [0, 1], frozenset({0, 1}), steps=60
        )
        assert set(schedule) == {0, 1}

    def test_cas_consensus_also_delayable(self):
        # CAS consensus is wait-free but still FLP-delayable *before*
        # anyone touches the object... actually the very first CAS step
        # decides, so bivalence dies immediately: only reads-free prefix.
        system = System(CasConsensus(2))
        oracle = ValencyOracle(system)
        config = system.initial_configuration([0, 1])
        with pytest.raises(AdversaryError):
            extend_bivalence(
                system, oracle, config, frozenset({0, 1}), steps=5
            )

    def test_needs_bivalent_start(self):
        system = System(CommitAdoptRounds(2))
        oracle = ValencyOracle(
            system, max_configs=5_000, max_depth=40, strict=False
        )
        config = system.initial_configuration([1, 1])
        # Unanimous inputs: validity forces 1, so the pair is univalent.
        with pytest.raises(AdversaryError):
            extend_bivalence(
                system, oracle, config, frozenset({0, 1}), steps=5
            )


class TestShrinker:
    def find_witness(self):
        from repro.analysis.checker import check_consensus_exhaustive

        system = System(SplitBrainConsensus(2))
        result = check_consensus_exhaustive(system, [0, 1])
        return system, result.first_violation().schedule

    def test_shrunk_witness_still_violates(self):
        system, witness = self.find_witness()
        shrunk = shrink_witness(
            system, [0, 1], witness, agreement_violated(system)
        )
        assert replay_holds(system, [0, 1], shrunk, agreement_violated(system))
        assert len(shrunk) <= len(witness)

    def test_shrunk_witness_is_locally_minimal(self):
        system, witness = self.find_witness()
        shrunk = shrink_witness(
            system, [0, 1], witness, agreement_violated(system)
        )
        for index in range(len(shrunk)):
            smaller = shrunk[:index] + shrunk[index + 1 :]
            assert not (
                smaller
                and replay_holds(
                    system, [0, 1], smaller, agreement_violated(system)
                )
            ), "shrinker left a removable step"

    def test_padded_witness_shrinks_substantially(self):
        system, witness = self.find_witness()
        # Pad with irrelevant steps (replayed with skip_halted).
        padded = witness + (0, 1) * 20
        shrunk = shrink_witness(
            system, [0, 1], padded, agreement_violated(system)
        )
        assert len(shrunk) <= len(witness)

    def test_non_witness_rejected(self):
        system = System(SplitBrainConsensus(2))
        with pytest.raises(ValueError):
            shrink_witness(system, [0, 0], (0, 1), agreement_violated(system))
