"""Property-based tests (hypothesis) for the core data structures."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.env import Env
from repro.model.operations import Read, Swap, Write
from repro.model.registers import ObjectKind, apply_operation
from repro.model.schedule import (
    concat,
    is_only_by,
    restricted_to,
    round_robin,
    solo,
)
from repro.mutex.encoding import (
    decode_schedule,
    elias_gamma,
    elias_gamma_decode,
    EncodedRun,
)

values = st.one_of(st.integers(), st.text(max_size=5), st.booleans())
names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll",)), min_size=1, max_size=6
)


class TestEnvProperties:
    @given(st.dictionaries(names, values, max_size=6), names, values)
    def test_set_then_get(self, mapping, key, value):
        env = Env(mapping).set(key, value)
        assert env[key] == value

    @given(st.dictionaries(names, values, max_size=6), names, values)
    def test_set_preserves_other_keys(self, mapping, key, value):
        base = Env(mapping)
        updated = base.set(key, value)
        for other in mapping:
            if other != key:
                assert updated[other] == mapping[other]

    @given(st.dictionaries(names, values, max_size=6))
    def test_hash_equals_on_equal_envs(self, mapping):
        assert hash(Env(dict(mapping))) == hash(Env(mapping))

    @given(
        st.dictionaries(names, values, max_size=5),
        st.dictionaries(names, values, max_size=5),
    )
    def test_update_matches_dict_semantics(self, base, overlay):
        merged = dict(base)
        merged.update(overlay)
        assert dict(Env(base).update(overlay)) == merged


class TestRegisterProperties:
    @given(values, values)
    def test_register_write_then_read(self, old, new):
        state, _ = apply_operation(ObjectKind.REGISTER, old, Write(0, new))
        state, response = apply_operation(ObjectKind.REGISTER, state, Read(0))
        assert response == new

    @given(values, values)
    def test_swap_returns_previous_and_overwrites(self, old, new):
        state, response = apply_operation(ObjectKind.SWAP, old, Swap(0, new))
        assert response == old
        assert state == new

    @given(values)
    def test_read_never_mutates(self, contents):
        for kind in ObjectKind:
            state, _ = apply_operation(kind, contents, Read(0))
            assert state == contents


class TestScheduleProperties:
    pid_lists = st.lists(st.integers(min_value=0, max_value=7), max_size=40)

    @given(pid_lists, st.sets(st.integers(min_value=0, max_value=7)))
    def test_restriction_is_only_by(self, schedule, pids):
        restricted = restricted_to(schedule, pids)
        assert is_only_by(restricted, pids)

    @given(pid_lists, pid_lists)
    def test_concat_lengths(self, left, right):
        assert len(concat(left, right)) == len(left) + len(right)

    @given(st.integers(min_value=0, max_value=9), st.integers(min_value=0, max_value=20))
    def test_solo_is_constant(self, pid, steps):
        schedule = solo(pid, steps)
        assert len(schedule) == steps
        assert is_only_by(schedule, {pid})

    @given(
        st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=5),
        st.integers(min_value=0, max_value=6),
    )
    def test_round_robin_composition(self, pids, rounds):
        schedule = round_robin(pids, rounds)
        assert len(schedule) == len(pids) * rounds
        assert restricted_to(schedule, set(pids)) == schedule


class TestEliasGamma:
    @given(st.integers(min_value=1, max_value=10**9))
    def test_roundtrip(self, value):
        bits = elias_gamma(value)
        decoded, end = elias_gamma_decode(bits, 0)
        assert decoded == value
        assert end == len(bits)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_length_is_logarithmic(self, value):
        assert len(elias_gamma(value)) == 2 * (value.bit_length() - 1) + 1

    @given(st.lists(st.integers(min_value=1, max_value=10**6), min_size=1, max_size=20))
    def test_concatenated_stream_decodes(self, numbers):
        bits = "".join(elias_gamma(v) for v in numbers)
        pos, out = 0, []
        while pos < len(bits):
            value, pos = elias_gamma_decode(bits, pos)
            out.append(value)
        assert out == numbers


class TestScheduleCodec:
    @given(
        st.lists(st.integers(min_value=0, max_value=7), max_size=60),
        st.integers(min_value=8, max_value=8),
    )
    @settings(max_examples=60)
    def test_schedule_roundtrip(self, schedule, n):
        from repro.mutex.cost import CanonicalRun
        from repro.mutex.encoding import encode_run

        run = CanonicalRun(
            protocol_name="test",
            n=n,
            schedule=tuple(schedule),
            charged_schedule=tuple(schedule),
            cost=len(schedule),
            per_process_cost={},
            cs_order=(),
        )
        encoded = encode_run(run)
        assert decode_schedule(encoded) == tuple(schedule)

    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=50))
    def test_encoding_length_bounded_by_runs(self, schedule):
        from repro.mutex.cost import CanonicalRun
        from repro.mutex.encoding import encode_run, _runs

        run = CanonicalRun(
            protocol_name="test",
            n=4,
            schedule=tuple(schedule),
            charged_schedule=tuple(schedule),
            cost=len(schedule),
            per_process_cost={},
            cs_order=(),
        )
        encoded = encode_run(run)
        run_count = len(list(_runs(schedule)))
        max_run = max(
            length for _, length in _runs(schedule)
        )
        per_run = 2 + 2 * math.ceil(math.log2(max_run + 1)) + 1
        assert len(encoded.bits) <= run_count * per_run
