"""Tests for the model checker's failure-detection paths."""

import pytest

from repro.analysis.checker import (
    check_consensus_exhaustive,
    check_consensus_random,
    check_solo_termination,
)
from repro.model.program import ProgramBuilder, ProgramProtocol, anonymous_programs
from repro.model.registers import register
from repro.model.system import System


def stalling_protocol(n: int):
    """Spins forever re-reading a register that never changes."""
    builder = ProgramBuilder()
    builder.label("spin")
    builder.read(0, "x")
    builder.goto("spin")
    return ProgramProtocol(
        "staller",
        n,
        [register(0)],
        anonymous_programs(builder.build(), n),
        lambda pid, value: {"v": value},
    )


def invalid_decider(n: int):
    """Decides a value that is nobody's input (validity violation)."""
    builder = ProgramBuilder()
    builder.write(0, lambda e: e["v"])
    builder.decide("made-up")
    return ProgramProtocol(
        "invalid",
        n,
        [register(None)],
        anonymous_programs(builder.build(), n),
        lambda pid, value: {"v": value},
    )


class TestSoloTerminationDetection:
    def test_staller_flagged(self):
        system = System(stalling_protocol(2))
        result = check_solo_termination(system, [0, 1], max_steps=200)
        assert not result.ok
        assert result.first_violation().kind == "solo-termination"

    def test_exhaustive_with_solo_check_flags_staller(self):
        system = System(stalling_protocol(2))
        result = check_consensus_exhaustive(
            system, [0, 1], check_solo=True, solo_step_bound=100,
            max_configs=1_000, strict=False,
        )
        assert not result.ok
        assert result.first_violation().kind == "solo-termination"


class TestValidityDetection:
    def test_invalid_value_flagged(self):
        system = System(invalid_decider(2))
        result = check_consensus_exhaustive(system, [0, 1])
        assert not result.ok
        kinds = {violation.kind for violation in result.violations}
        assert "validity" in kinds

    def test_random_checker_also_flags(self):
        system = System(invalid_decider(3))
        result = check_consensus_random(
            system, [0, 1, 1], runs=2, schedule_length=30
        )
        assert not result.ok


class TestRandomTerminationDetection:
    def test_staller_fails_termination_requirement(self):
        system = System(stalling_protocol(2))
        with pytest.raises(Exception):
            # solo_run inside the random checker exceeds its bound.
            check_consensus_random(
                system, [0, 1], runs=1, schedule_length=10
            )

    def test_termination_can_be_waived(self):
        # With require_all_decide=False a non-deciding run is not an
        # error by itself... the staller still explodes the solo-run
        # bound, so use a protocol that halts without deciding.
        builder = ProgramBuilder()
        builder.read(0, "x")
        builder.halt()
        protocol = ProgramProtocol(
            "halter",
            2,
            [register(0)],
            anonymous_programs(builder.build(), 2),
            lambda pid, value: {},
        )
        system = System(protocol)
        result = check_consensus_random(
            system, [0, 1], runs=2, schedule_length=10,
            require_all_decide=False,
        )
        assert result.ok
        strict = check_consensus_random(
            system, [0, 1], runs=2, schedule_length=10,
            require_all_decide=True,
        )
        assert not strict.ok
        assert strict.first_violation().kind == "termination"
