"""Seed the regression zoo with the hand-picked edge-case automata.

Each specimen pins a shape the fuzzer's random walk is unlikely to hit
often but the engines must agree on forever: the split-brain violation
family, the |W| = n-1 boundary of the paper's Theorem 1, Ovens-style
swap-object consensus, decide-free livelocks, POR-pruning-heavy read
lattices, and a validity breaker.  Hand-picked entries bypass the
campaign's boring-filter by design -- curation outranks heuristics.

Idempotent: adding an already-present digest is a no-op, so re-running
after adding a new specimen only writes the new file.

Usage::

    PYTHONPATH=src python scripts/seed_zoo.py [ZOO_DIR]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.fuzz.zoo import Zoo, default_zoo_root
from repro.model.table import TableProtocol


def _specimens():
    # 1. The split-brain family: two writers race one register, a reader
    #    echoes whichever value it sees -- the canonical agreement
    #    violation with a short witness (engines must all find it).
    yield TableProtocol(
        n=4,
        registers=1,
        initial={0: 0, 1: 1},
        rules={0: ("write", 0, 0), 1: ("write", 0, 1), 2: ("read", 0)},
        transitions={(0, None): 2, (1, None): 2, (2, 0): 3, (2, 1): 4},
        decisions={3: 0, 4: 1},
        name="split-brain-4",
    ), {
        "tag": "hand-picked:split-brain",
        "why": "canonical agreement violation; every engine must find "
        "the same witness schedules",
    }

    # 2. Correct 2-process swap-register consensus (Ovens-style
    #    historyless object): first swapper sees the initial None and
    #    wins, the loser sees the winner's value and adopts it.
    yield TableProtocol(
        n=2,
        registers=1,
        initial={0: 0, 1: 1},
        rules={0: ("swap", 0, 0), 1: ("swap", 0, 1)},
        transitions={(0, None): 2, (0, 1): 3, (1, None): 3, (1, 0): 2},
        decisions={2: 0, 3: 1},
        name="swap-race-2",
    ), {
        "tag": "hand-picked:swap-object-consensus",
        "why": "correct consensus from one historyless swap object; "
        "exercises the swap semantics across all engines",
    }

    # 3. The |W| = n-1 boundary: n = 3 processes, exactly 2 registers
    #    written on every decided run (the tight bound of Theorem 1).
    yield TableProtocol(
        n=3,
        registers=2,
        initial={0: 0, 1: 1},
        rules={
            0: ("write", 0, 0), 1: ("write", 0, 1),
            2: ("write", 1, 0), 3: ("read", 0),
        },
        transitions={
            (0, None): 2, (1, None): 2, (2, None): 3,
            (3, 0): 4, (3, 1): 5,
        },
        decisions={4: 0, 5: 1},
        name="boundary-w2-n3",
    ), {
        "tag": "hand-picked:boundary-w-eq-n-minus-1",
        "why": "writes exactly n-1 = 2 registers; straddles the "
        "Theorem 1 footprint boundary the lint layer reasons about",
    }

    # 4. Test&set winner-take-all: swap in your value, then race the
    #    tas bit; the winner decides its own value, the loser reads the
    #    swap register and adopts what it finds there.
    yield TableProtocol(
        n=2,
        registers=2,
        initial={0: 0, 1: 1},
        rules={
            0: ("swap", 1, 0), 1: ("swap", 1, 1),
            2: ("tas", 0), 3: ("read", 1),
        },
        transitions={
            (0, None): 2, (0, 0): 2, (0, 1): 2,
            (1, None): 2, (1, 0): 2, (1, 1): 2,
            (2, 0): 4, (2, 1): 3, (3, 0): 5, (3, 1): 6,
        },
        defaults={0: 2, 1: 2},
        decisions={4: 0, 5: 0, 6: 1},
        name="tas-winner-2",
    ), {
        "tag": "hand-picked:tas-object",
        "why": "mixes swap and test&set objects in one automaton; the "
        "tas response branch must explore identically everywhere",
    }

    # 5. Decide-free livelock: processes cycle through reads and writes
    #    forever.  No decisions at all -- the engines must agree the
    #    decided-set is empty and on every visited-count.
    yield TableProtocol(
        n=3,
        registers=1,
        initial={0: 0, 1: 1},
        rules={0: ("write", 0, 0), 1: ("write", 0, 1), 2: ("read", 0)},
        transitions={(0, None): 2, (1, None): 2, (2, 0): 0, (2, 1): 1},
        name="decide-free-3",
    ), {
        "tag": "hand-picked:decide-free",
        "why": "no decision anywhere: exploration must terminate by "
        "deduplication alone, identically in every engine",
    }

    # 6. POR-pruning-heavy: three registers read in every order -- a
    #    lattice of commuting steps where partial-order reduction prunes
    #    most edges.  POR results must stay bit-identical regardless.
    yield TableProtocol(
        n=3,
        registers=3,
        initial={0: 0, 1: 0},
        rules={0: ("read", 0), 1: ("read", 1), 2: ("read", 2)},
        transitions={(0, None): 1, (1, None): 2, (2, None): 3},
        defaults={0: 1, 1: 2, 2: 3},
        decisions={3: 0},
        name="por-heavy-3",
    ), {
        "tag": "hand-picked:por-pruning-heavy",
        "why": "all steps commute (pure reads); maximal POR pruning "
        "must not change certificates or witnesses",
    }

    # 7. Ping-pong: two states bouncing a register between values; the
    #    decision depends on parity of interleaving.
    yield TableProtocol(
        n=2,
        registers=1,
        initial={0: 0, 1: 1},
        rules={0: ("write", 0, 1), 1: ("write", 0, 0), 2: ("read", 0)},
        transitions={(0, None): 2, (1, None): 2, (2, 0): 3, (2, 1): 4},
        decisions={3: 0, 4: 1},
        initial_memory=0,
        name="ping-pong-2",
    ), {
        "tag": "hand-picked:ping-pong",
        "why": "non-None initial memory plus racing overwrites; "
        "decision depends on interleaving parity",
    }

    # 8. Swap chain: three swap registers passed through in sequence,
    #    each feeding the next state's choice.
    yield TableProtocol(
        n=3,
        registers=3,
        initial={0: 0, 1: 1},
        rules={
            0: ("swap", 0, 0), 1: ("swap", 0, 1),
            2: ("swap", 1, 0), 3: ("swap", 2, 1),
        },
        transitions={
            (0, None): 2, (1, None): 3, (2, None): 4,
            (3, None): 5, (2, 1): 5, (3, 0): 4,
        },
        defaults={0: 3, 1: 2, 2: 4, 3: 5},
        decisions={4: 0, 5: 1},
        name="swap-chain-3",
    ), {
        "tag": "hand-picked:swap-chain",
        "why": "chained historyless swap objects; deep response "
        "branching over three registers",
    }

    # 9. Mixed op kinds on disjoint registers: register write, swap and
    #    tas all in one automaton.
    yield TableProtocol(
        n=2,
        registers=3,
        initial={0: 0, 1: 1},
        rules={
            0: ("write", 0, 0), 1: ("swap", 1, 1),
            2: ("tas", 2), 3: ("read", 0),
        },
        transitions={
            (0, None): 2, (1, None): 2, (1, 1): 3,
            (2, 0): 3, (2, 1): 4, (3, 0): 4, (3, None): 5,
        },
        defaults={3: 5},
        decisions={4: 0, 5: 1},
        name="mixed-ops-3",
    ), {
        "tag": "hand-picked:mixed-object-kinds",
        "why": "one automaton over all three object kinds; kind "
        "resolution and object specs must agree across engines",
    }

    # 10. Self-loop trap: a state whose every response maps back to
    #     itself (the missing-entry self-loop semantics, explicitly).
    yield TableProtocol(
        n=2,
        registers=1,
        initial={0: 0, 1: 1},
        rules={0: ("read", 0), 1: ("write", 0, 1)},
        transitions={(1, None): 2, (0, 1): 2},
        decisions={2: 1},
        name="self-loop-2",
    ), {
        "tag": "hand-picked:self-loop",
        "why": "state 0 self-loops on response None (no entry, no "
        "default); deduplication must cut the loop identically",
    }

    # 11. Wide branching: one read state fanning out to a different
    #     successor per response, under 3 processes.
    yield TableProtocol(
        n=3,
        registers=2,
        initial={0: 0, 1: 1},
        rules={
            0: ("write", 1, 0), 1: ("write", 1, 1), 2: ("read", 1),
            3: ("write", 0, 1),
        },
        transitions={
            (0, None): 2, (1, None): 2,
            (2, None): 3, (2, 0): 4, (2, 1): 5,
            (3, None): 4,
        },
        decisions={4: 0, 5: 1},
        name="wide-branching-3",
    ), {
        "tag": "hand-picked:wide-branching",
        "why": "response-indexed fan-out: every branch of the read "
        "must be scheduled in every engine",
    }

    # 12. Validity breaker: decides a constant outside every input.
    #     The checker must flag validity, and all engines must agree on
    #     the exact witnesses.
    yield TableProtocol(
        n=2,
        registers=1,
        initial={0: 0, 1: 0},
        rules={0: ("write", 0, 1)},
        transitions={(0, None): 1},
        decisions={1: 7},
        name="validity-break-2",
    ), {
        "tag": "hand-picked:validity-break",
        "why": "decides the constant 7, a value no process proposed; "
        "pins the validity-violation detection path",
    }


def main(argv) -> int:
    root = Path(argv[1]) if len(argv) > 1 else default_zoo_root()
    zoo = Zoo(root)
    added = 0
    for protocol, provenance in _specimens():
        provenance = {
            "source": "hand-picked",
            "seed": None,
            "generator_version": None,
            **provenance,
        }
        specimen, new = zoo.add(protocol, provenance)
        marker = "added" if new else "kept "
        print(f"{marker} {specimen.digest[:16]} {protocol.name}")
        added += int(new)
    print(f"{added} new specimen(s); zoo now holds {len(zoo)} at {zoo.root}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
