#!/usr/bin/env bash
# Reproduce everything: install, tests, benchmarks, experiment tables.
#
#   scripts/reproduce.sh          # full (the E1 sweep to n=6 takes minutes)
#   scripts/reproduce.sh --quick  # E1 capped at n=4
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== install =="
python setup.py develop >/dev/null 2>&1 \
  || pip install -e . --no-build-isolation

echo "== test suite =="
python -m pytest tests/ -q | tee test_output.txt

echo "== benchmark timings =="
python -m pytest benchmarks/ --benchmark-only -q | tee bench_output.txt

echo "== experiment tables (EXPERIMENTS.md) =="
( cd benchmarks && python run_all.py "${1:-}" )
