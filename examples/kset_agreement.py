#!/usr/bin/env python3
"""k-set agreement: trading decision slack for registers.

The paper's conclusion points at k-set agreement (at most k distinct
decisions) as the next frontier: the best protocols use n-k+1 registers
[BRS15], and whether Omega(n-k) is the true bound remains open.  This
example runs the partition protocol across the (n, k) grid, checks the
k-agreement property on adversarial inputs (all distinct), and profiles
which registers actually carry traffic.

Run:  python examples/kset_agreement.py
"""

from repro.analysis.checker import check_consensus_random
from repro.analysis.report import print_table
from repro.analysis.usage import profile_usage
from repro.model.system import System
from repro.protocols.consensus import KSetPartition


def main() -> None:
    rows = []
    for n in (4, 5, 6):
        for k in (1, 2, n - 1):
            protocol = KSetPartition(n, k)
            system = System(protocol)
            inputs = list(range(n))
            result = check_consensus_random(
                system, inputs, k=k, runs=15,
                schedule_length=120 * n, seed=n * 7 + k,
            )
            usage = profile_usage(
                system, inputs, runs=6, schedule_length=80 * n, seed=k
            )
            rows.append(
                [
                    n,
                    k,
                    protocol.num_objects,
                    n - k + 1,
                    "ok" if result.ok else result.first_violation().kind,
                    usage.registers_written,
                ]
            )
    print_table(
        "k-set agreement: registers vs decision slack",
        [
            "n",
            "k",
            "registers",
            "BRS15 n-k+1",
            "k-agreement",
            "registers exercised",
        ],
        rows,
        note="k = 1 is consensus (n registers); every extra unit of "
        "decision slack saves exactly one register",
    )


if __name__ == "__main__":
    main()
