#!/usr/bin/env python3
"""Space audit: what the theorem means for protocol designers.

Audits a family of consensus protocols -- correct and deliberately
under-provisioned -- the way a reviewer armed with the paper would:

* count the registers the implementation declares;
* run the model checker: protocols below the n-1 bound *must* have a
  consensus violation somewhere, and the checker finds the witness;
* run the Theorem 1 adversary on the correct ones and report the
  certificate.

Run:  python examples/space_audit.py
"""

from repro.analysis.checker import check_consensus_exhaustive
from repro.analysis.report import print_table
from repro.core.theorem import space_lower_bound
from repro.errors import AdversaryError, ViolationError
from repro.model.system import System
from repro.protocols.consensus import (
    CommitAdoptRounds,
    OptimisticOneRegister,
    SplitBrainConsensus,
    shared_register_rounds,
)


def audit(protocol, bounded_budget=30_000):
    system = System(protocol)
    n = protocol.n
    inputs = [0] + [1] * (n - 1)
    check = check_consensus_exhaustive(
        system, inputs, max_configs=120_000, strict=False
    )
    if check.ok:
        spec = "no violation found"
        if check.exhaustive:
            spec += " (exhaustive)"
    else:
        violation = check.first_violation()
        spec = f"{violation.kind} violation in {len(violation.schedule)} steps"
    try:
        certificate = space_lower_bound(
            system, strict=False, max_configs=bounded_budget, max_depth=60
        )
        bound = f"{certificate.bound} registers pinned"
    except (AdversaryError, ViolationError) as exc:
        bound = f"adversary: {type(exc).__name__}"
    return [protocol.name, n, protocol.num_objects, spec, bound]


def main() -> None:
    rows = [
        audit(CommitAdoptRounds(2)),
        audit(CommitAdoptRounds(3)),
        audit(shared_register_rounds(3, 1)),
        audit(shared_register_rounds(4, 2)),
        audit(SplitBrainConsensus(2)),
        audit(OptimisticOneRegister(2)),
    ]
    print_table(
        "space audit: registers declared vs Theorem 1 (n-1 needed)",
        ["protocol", "n", "registers", "checker verdict", "adversary"],
        rows,
        note="protocols with < n-1 registers cannot be correct; the "
        "checker exhibits the violation the theorem predicts",
    )


if __name__ == "__main__":
    main()
