#!/usr/bin/env python3
"""Watch the proof work: a step-by-step trace of the Theorem 1 adversary.

Prints the adversarial execution the construction builds against a
3-process protocol -- every read and write, which processes end up
covering which registers, and where the hidden process z was stopped.
This is Figure 4 of the paper, rendered as an actual execution.

Run:  python examples/adversary_trace.py
"""

from repro.core.theorem import space_lower_bound
from repro.model.schedule import concat
from repro.model.system import System
from repro.protocols.consensus import CommitAdoptRounds


def main() -> None:
    n = 3
    system = System(CommitAdoptRounds(n))
    certificate = space_lower_bound(
        system, strict=False, max_configs=30_000, max_depth=60
    )

    print(f"{certificate.summary()}\n")
    config = system.initial_configuration(list(certificate.inputs))
    print(f"initial configuration: inputs {list(certificate.inputs)}")

    phases = [
        ("alpha (Lemma 4: reach the nice configuration)", certificate.alpha),
        ("phi (Lemma 3 at the top level)", certificate.phi),
        ("zeta (z runs solo, writes hidden in covered registers)",
         certificate.zeta),
    ]
    step_no = 0
    for label, schedule in phases:
        print(f"\n-- {label}: {len(schedule)} steps")
        for pid in schedule:
            config, step = system.step(config, pid)
            print(
                f"  {step_no:3d}  p{step.pid} {type(step.op).__name__:<6} "
                f"r{step.op.obj if step.op.obj is not None else '-'} "
                f"-> memory {config.memory}"
            )
            step_no += 1

    print("\n-- final configuration:")
    for pid, register in sorted(certificate.covering.items()):
        op = system.poised(config, pid)
        print(f"  p{pid} covers r{register} (poised: {op})")
    z_op = system.poised(config, certificate.z)
    print(
        f"  z = p{certificate.z} poised to write the fresh register "
        f"r{certificate.fresh_register} (poised: {z_op})"
    )
    regs = sorted(certificate.registers)
    print(
        f"\n{len(regs)} distinct registers witnessed: "
        f"{', '.join(f'r{r}' for r in regs)} >= n-1 = {n - 1}"
    )
    total = len(concat(certificate.alpha, certificate.phi, certificate.zeta))
    print(f"(total adversarial steps: {total})")


if __name__ == "__main__":
    main()
