#!/usr/bin/env python3
"""Quickstart: model-check a consensus protocol, then run the paper's
adversary against it.

The library's core loop in four moves:

1. build an n-process protocol (here: obstruction-free consensus from
   n single-writer registers);
2. model-check agreement/validity exhaustively for small n;
3. run the Theorem 1 adversary (Zhu, STOC 2016): it constructs an
   adversarial execution pinning n-1 distinct registers;
4. validate the returned certificate by pure replay.

Run:  python examples/quickstart.py
"""

from repro.analysis.checker import check_consensus_exhaustive
from repro.core.theorem import space_lower_bound
from repro.model.system import System
from repro.protocols.consensus import CommitAdoptRounds


def main() -> None:
    n = 3
    protocol = CommitAdoptRounds(n)
    system = System(protocol)
    print(f"protocol: {protocol.describe()}")

    # 1-2. Model checking: every interleaving of a 2-process instance,
    # a bounded prefix of the 3-process graph.
    small = System(CommitAdoptRounds(2))
    for inputs in [(0, 0), (0, 1), (1, 0), (1, 1)]:
        result = check_consensus_exhaustive(small, list(inputs))
        status = "exhaustive" if result.exhaustive else "bounded"
        print(
            f"  n=2 inputs={inputs}: ok={result.ok} "
            f"({result.configs_visited} configurations, {status})"
        )

    # 3. The adversary.  The oracle runs in bounded mode because a real
    # obstruction-free protocol has unbounded races; the certificate
    # below is validated by replay, independent of any oracle guess.
    certificate = space_lower_bound(
        system, strict=False, max_configs=30_000, max_depth=60
    )
    print(f"\nadversary: {certificate.summary()}")
    print(f"  schedule alpha ({len(certificate.alpha)} steps): "
          f"{list(certificate.alpha)}")
    print(f"  covering map: {certificate.covering}")
    print(f"  hidden process z={certificate.z} poised to write fresh "
          f"register r{certificate.fresh_register}")

    # 4. Replay-validate (raises CertificateError on any mismatch).
    certificate.validate(System(CommitAdoptRounds(n)))
    print("\ncertificate replay-validated: the protocol provably uses "
          f">= {certificate.bound} registers on {n} processes.")


if __name__ == "__main__":
    main()
