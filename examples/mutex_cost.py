#!/usr/bin/env python3
"""Mutual exclusion cost curves (the Fan-Lynch companion bound).

Measures the state-change cost of canonical executions (every process
enters the critical section once) for three algorithms, against the
Omega(n log n) floor: the tournament algorithm tracks n log2 n, while
Peterson's filter lock and the bakery pay polynomially more.

Run:  python examples/mutex_cost.py
"""

import math

from repro.analysis.report import print_table
from repro.model.system import System
from repro.mutex import (
    BakeryMutex,
    PetersonFilter,
    TournamentMutex,
    sequential_canonical_run,
)
from repro.mutex.encoding import information_floor_bits


def main() -> None:
    rows = []
    for n in (2, 4, 8, 16, 24):
        permutation = list(range(n))
        costs = {}
        for make in (TournamentMutex, BakeryMutex, PetersonFilter):
            run = sequential_canonical_run(
                System(make(n, sessions=1)), permutation
            )
            costs[make.__name__] = run.cost
        rows.append(
            [
                n,
                costs["TournamentMutex"],
                costs["BakeryMutex"],
                costs["PetersonFilter"],
                round(n * math.log2(n), 1),
                round(information_floor_bits(n), 1),
            ]
        )
    print_table(
        "canonical-execution cost (state-change model)",
        [
            "n",
            "tournament",
            "bakery",
            "peterson",
            "n*log2(n)",
            "log2(n!)",
        ],
        rows,
        note="tournament ~ n log n (tight); bakery/peterson superlinear; "
        "log2(n!) is the information floor any algorithm must pay",
    )


if __name__ == "__main__":
    main()
