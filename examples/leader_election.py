#!/usr/bin/env python3
"""The introduction's contrast: weak leader election is cheap, consensus
is not.

The paper's introduction recounts the "evidence" that consensus might
have needed only o(n) registers: weak leader election -- exactly one
process learns it leads -- was solved with O(sqrt n), then O(log n)
registers.  Theorem 1 shows the evidence misleads: consensus needs n-1.

This example charts register counts of the implemented protocols and
measures the splitter election's behaviour under contention.

Run:  python examples/leader_election.py
"""

import math
import random

from repro.analysis.report import print_table
from repro.model.schedule import random_bursty_schedule
from repro.model.system import System
from repro.protocols.consensus import CommitAdoptRounds
from repro.protocols.leader_election import SplitterElection, TournamentElection


def election_round(system, n, rng):
    """One contended election; returns the number of leaders (0 or 1)."""
    config = system.initial_configuration([None] * n)
    schedule = random_bursty_schedule(list(range(n)), 40 * n, rng)
    config, _ = system.run(config, schedule, skip_halted=True)
    for pid in range(n):
        config, _ = system.solo_run(config, pid, 1_000)
    return sum(1 for pid in range(n) if system.decision(config, pid) is True)


def main() -> None:
    rows = []
    rng = random.Random(2016)
    for n in (4, 16, 64, 256):
        splitter = SplitterElection(n)
        consensus_registers = CommitAdoptRounds(n).num_objects
        tournament_objects = TournamentElection(n).num_objects
        system = System(splitter)
        trials = 60
        wins = sum(election_round(system, n, rng) for _ in range(trials))
        rows.append(
            [
                n,
                splitter.num_objects,
                round(math.log2(n) + 2, 1),
                tournament_objects,
                consensus_registers,
                f"{100 * wins / trials:.0f}%",
            ]
        )
    print_table(
        "weak leader election vs consensus: registers used",
        [
            "n",
            "splitter-election",
            "log2(n)+2",
            "tournament (T&S)",
            "consensus",
            "elected under contention",
        ],
        rows,
        note="splitter election: at most one leader always; election can "
        "fail under contention (weak liveness) -- consensus cannot dodge "
        "the n-1 register bill",
    )


if __name__ == "__main__":
    main()
