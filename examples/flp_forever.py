#!/usr/bin/env python3
"""The other side of the coin: delaying consensus forever (FLP).

The paper's valency notion refines Fischer-Lynch-Paterson; the classic
FLP adversary keeps a protocol bivalent for as long as it pleases.  This
example runs that adversary against the round protocol -- 150 steps of
contention with both outcomes still possible at the end -- then shows
the obstruction-free escape hatch: release one process to run solo and
it decides immediately.

Run:  python examples/flp_forever.py
"""

from repro.analysis.flp import undecided_forever_demo
from repro.analysis.trace_format import format_decisions
from repro.model.system import System
from repro.protocols.consensus import CommitAdoptRounds


def main() -> None:
    n = 2
    system = System(CommitAdoptRounds(n))
    steps = 150
    schedule = undecided_forever_demo(
        system, [0, 1], frozenset(range(n)), steps=steps
    )
    print(
        f"bivalence-preserving adversary: {steps} steps, both values "
        "still decidable"
    )
    per_process = {pid: schedule.count(pid) for pid in range(n)}
    print(f"  steps per process: {per_process}")

    config = system.initial_configuration([0, 1])
    config, _ = system.run(config, schedule)
    print(f"  {format_decisions(system.decisions(config))}")
    rounds = [
        entry[0] for entry in config.memory if entry is not None
    ]
    print(f"  rounds reached while undecided: {rounds}")

    # Obstruction-freedom: solo means decided.
    final, trace = system.solo_run(config, 0, max_steps=10_000)
    print(
        f"\nrelease p0 solo: decides {system.decision(final, 0)!r} after "
        f"{len(trace)} steps -- obstruction-freedom in one line"
    )
    print(
        "\n(the paper's Theorem 1 and this adversary are duals: one "
        "drives writes apart to pin n-1 registers, the other balances "
        "them to stall the decision)"
    )


if __name__ == "__main__":
    main()
