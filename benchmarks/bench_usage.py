"""E2b -- registers exercised, not just declared.

Complements E2: the theorem bounds the registers a protocol must *have*;
this bench profiles the registers real executions *touch*.  Every
register of the n-register protocols is both read and written in
randomized runs -- none is decorative -- and the broken protocols'
smaller footprints are visible at a glance.

Standalone:  python benchmarks/bench_usage.py
Benchmark:   pytest benchmarks/bench_usage.py --benchmark-only
"""

from repro.analysis.report import print_table
from repro.analysis.usage import profile_usage
from repro.model.system import System
from repro.protocols.consensus import (
    CommitAdoptRounds,
    KSetPartition,
    shared_register_rounds,
)
from repro.protocols.consensus.racing import RacingCounters


def profile(protocol, runs=12):
    system = System(protocol)
    inputs = [i % 2 for i in range(protocol.n)]
    return profile_usage(
        system, inputs, runs=runs, schedule_length=150 * protocol.n, seed=1
    )


def main() -> None:
    rows = []
    for protocol in (
        CommitAdoptRounds(3),
        CommitAdoptRounds(5),
        RacingCounters(3),
        KSetPartition(5, 2),
        shared_register_rounds(4, 2),
    ):
        result = profile(protocol)
        rows.append(
            [
                protocol.name,
                protocol.n,
                protocol.num_objects,
                result.registers_written,
                result.registers_read,
                protocol.n - 1,
            ]
        )
    print_table(
        "E2b: registers declared vs exercised (randomized executions)",
        [
            "protocol",
            "n",
            "declared",
            "written",
            "read",
            "theorem floor n-1",
        ],
        rows,
        note="every declared register carries real traffic; correct "
        "protocols exercise >= n-1 of them, matching the certificates",
    )

    detail = profile(CommitAdoptRounds(3))
    print_table(
        "E2b detail: per-register traffic, commit-adopt-rounds n=3",
        ["register", "reads", "writes", "writers", "distinct values"],
        detail.rows(),
    )


def test_usage_covers_all_registers(benchmark):
    result = benchmark.pedantic(
        profile, args=(CommitAdoptRounds(4),), rounds=1, iterations=1
    )
    assert result.registers_written == 4
    assert result.registers_read == 4


if __name__ == "__main__":
    main()
