"""E4 -- refined valency: Propositions 1-2 and Lemma 1, quantified.

Paper: the proof's foundation is that valency attaches to *subsets* of
processes.  Measured, on the finite-state CAS protocol where the oracle
is exact: the refined-valency classification of every non-empty subset
from every initial configuration (Prop. 2's bivalent initial
configuration among them), and Lemma 1's success rate across bivalent
sets.

Standalone:  python benchmarks/bench_valency.py
Benchmark:   pytest benchmarks/bench_valency.py --benchmark-only
"""

import itertools

from repro.analysis.report import print_table
from repro.core.lemmas import lemma1
from repro.core.valency import Valence, ValencyOracle, initial_bivalent_configuration
from repro.model.system import System
from repro.protocols.consensus import CasConsensus


def classify_all(n: int):
    """Counts of (subset, initial configuration) valency classes."""
    system = System(CasConsensus(n))
    oracle = ValencyOracle(system)
    counts = {Valence.ZERO: 0, Valence.ONE: 0, Valence.BIVALENT: 0}
    pids = list(range(n))
    for inputs in itertools.product((0, 1), repeat=n):
        config = system.initial_configuration(list(inputs))
        for size in range(1, n + 1):
            for subset in itertools.combinations(pids, size):
                counts[oracle.valence(config, frozenset(subset))] += 1
    return counts, oracle.stats


def lemma1_sweep(n: int):
    """Run Lemma 1 on every bivalent set of size >= 3 at initial configs."""
    system = System(CasConsensus(n))
    oracle = ValencyOracle(system)
    attempted = succeeded = 0
    pids = list(range(n))
    for inputs in itertools.product((0, 1), repeat=n):
        config = system.initial_configuration(list(inputs))
        for size in range(3, n + 1):
            for subset in itertools.combinations(pids, size):
                processes = frozenset(subset)
                if not oracle.is_bivalent(config, processes):
                    continue
                attempted += 1
                result = lemma1(system, oracle, config, processes)
                after, _ = system.run(config, result.phi)
                assert oracle.is_bivalent(after, processes - {result.z})
                succeeded += 1
    return attempted, succeeded


def main() -> None:
    rows = []
    for n in (2, 3, 4):
        counts, stats = classify_all(n)
        rows.append(
            [
                n,
                counts[Valence.ZERO],
                counts[Valence.ONE],
                counts[Valence.BIVALENT],
                stats["queries"],
                stats["cache_hits"],
            ]
        )
    print_table(
        "E4a: refined valency classification (CAS consensus, exact oracle)",
        ["n", "0-univalent", "1-univalent", "bivalent", "queries", "cache hits"],
        rows,
    )

    rows = []
    for n in (3, 4):
        attempted, succeeded = lemma1_sweep(n)
        rows.append([n, attempted, succeeded])
    print_table(
        "E4b: Lemma 1 across all bivalent sets at initial configurations",
        ["n", "bivalent sets |P|>=3", "lemma 1 succeeded"],
        rows,
        note="success == P-{z} verified bivalent from C.phi, as the lemma "
        "asserts",
    )

    system = System(CasConsensus(4))
    config, p0, p1 = initial_bivalent_configuration(system)
    print(
        f"Proposition 2 witness (n=4): I with inputs 0,1,0,0; "
        f"{{p{p0}}} 0-univalent, {{p{p1}}} 1-univalent, pair bivalent\n"
    )


def test_classification_n3(benchmark):
    counts, _ = benchmark(classify_all, 3)
    assert counts[Valence.BIVALENT] > 0


def test_lemma1_sweep_n3(benchmark):
    attempted, succeeded = benchmark(lemma1_sweep, 3)
    assert attempted == succeeded > 0


if __name__ == "__main__":
    main()
