"""E2 -- upper bound context: n-register protocols solve consensus.

Paper (Section 1): "all existing protocols use at least n registers";
protocols with n registers exist.  Measured: our n-register commit-adopt
protocol passes exhaustive checking at n=2, bounded + randomized
checking beyond, and its register count is exactly n.

Standalone:  python benchmarks/bench_upper_bound.py
Benchmark:   pytest benchmarks/bench_upper_bound.py --benchmark-only
"""

import itertools

from repro.analysis.checker import (
    check_consensus_exhaustive,
    check_consensus_random,
    check_solo_termination,
)
from repro.analysis.report import print_table
from repro.model.system import System
from repro.protocols.consensus import CommitAdoptRounds


def verify(n: int):
    protocol = CommitAdoptRounds(n)
    system = System(protocol)
    if n == 2:
        visited = 0
        for inputs in itertools.product((0, 1), repeat=n):
            result = check_consensus_exhaustive(system, list(inputs))
            assert result.ok and result.exhaustive
            visited += result.configs_visited
        mode = f"exhaustive ({visited} configs)"
    else:
        result = check_consensus_exhaustive(
            system, [0] + [1] * (n - 1), max_configs=40_000, strict=False
        )
        assert result.ok
        mode = f"bounded ({result.configs_visited} configs)"
    random_result = check_consensus_random(
        system,
        [i % 2 for i in range(n)],
        runs=15,
        schedule_length=120 * n,
        seed=n,
    )
    assert random_result.ok, random_result.first_violation()
    solo = check_solo_termination(system, [1] * n, max_steps=50 * n)
    assert solo.ok
    return protocol.num_objects, mode


def main() -> None:
    rows = []
    for n in (2, 3, 4, 6, 8, 12, 16):
        registers, mode = verify(n)
        rows.append([n, registers, mode, "15 random runs ok", "solo ok"])
    print_table(
        "E2: n-register obstruction-free consensus (upper bound)",
        ["n", "registers", "safety checking", "randomized", "termination"],
        rows,
        note="registers used == n, matching the protocols cited in Sec. 1",
    )


def test_verify_n2(benchmark):
    registers, _ = benchmark(verify, 2)
    assert registers == 2


def test_verify_n8(benchmark):
    registers, _ = benchmark.pedantic(verify, args=(8,), rounds=1, iterations=1)
    assert registers == 8


if __name__ == "__main__":
    main()
