"""E14 -- fault-injection overhead: the wrappers must be near-free.

The fault machinery decorates every shared-memory operation
(:meth:`System._apply_shared`) and every crash plan filters schedules;
if that tax were large, fault campaigns would quietly shrink their
coverage.  Measured: wall-clock of identical schedule replays on a bare
:class:`System` vs a :class:`FaultyMemorySystem` carrying an all-zero
fault plan (the identity), plus the cost of crash-plan filtering.
Target: < 15% overhead for the zero-rate wrapper.

Standalone:  python benchmarks/bench_faults.py [repeats]
Benchmark:   pytest benchmarks/bench_faults.py --benchmark-only
"""

import random
import sys
import time

from repro.analysis.report import print_table
from repro.faults import CrashPlan, FaultyMemorySystem, RegisterFaultPlan
from repro.model.schedule import random_bursty_schedule
from repro.model.system import System
from repro.protocols.consensus import (
    CasConsensus,
    CommitAdoptRounds,
    TasConsensus,
)

#: (name, protocol factory, inputs) for the replay workloads.
WORKLOADS = [
    ("rounds:3", lambda: CommitAdoptRounds(3), [0, 1, 1]),
    ("cas:3", lambda: CasConsensus(3), [0, 1, 1]),
    ("tas:2", lambda: TasConsensus(2), [0, 1]),
]

SCHEDULES = 40
SCHEDULE_LENGTH = 400


def make_schedules(n: int):
    rng = random.Random(7)
    return [
        random_bursty_schedule(list(range(n)), SCHEDULE_LENGTH, rng)
        for _ in range(SCHEDULES)
    ]


def replay_workload(system, inputs, schedules):
    initial = system.initial_configuration(inputs)
    total_steps = 0
    for schedule in schedules:
        _, trace = system.run(initial, schedule, skip_halted=True)
        total_steps += len(trace)
    return total_steps


def timed(fn, repeats: int = 3) -> float:
    """Best-of-N wall clock; best filters scheduler noise."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure(repeats: int = 3):
    rows = []
    for name, make, inputs in WORKLOADS:
        protocol = make()
        schedules = make_schedules(protocol.n)
        bare = System(make())
        faulty = FaultyMemorySystem(make(), RegisterFaultPlan())
        plan = CrashPlan.at(SCHEDULE_LENGTH // 2, [0])

        bare_time = timed(
            lambda: replay_workload(bare, inputs, schedules), repeats
        )
        faulty_time = timed(
            lambda: replay_workload(faulty, inputs, schedules), repeats
        )
        crashed = [plan.apply(schedule) for schedule in schedules]
        crash_time = timed(
            lambda: replay_workload(bare, inputs, crashed), repeats
        )
        overhead = 100.0 * (faulty_time - bare_time) / bare_time
        rows.append(
            [
                name,
                f"{bare_time * 1e3:.1f}",
                f"{faulty_time * 1e3:.1f}",
                f"{overhead:+.1f}%",
                f"{crash_time * 1e3:.1f}",
            ]
        )
    return rows


def main(repeats: int = 3) -> None:
    print_table(
        "E14: fault-wrapper overhead "
        f"({SCHEDULES} schedules x {SCHEDULE_LENGTH} steps, best of "
        f"{repeats})",
        [
            "protocol",
            "bare (ms)",
            "zero-rate faulty (ms)",
            "overhead",
            "crashed sched (ms)",
        ],
        measure(repeats),
        note="zero-rate FaultyMemorySystem is semantically the identity; "
        "target overhead < 15%.  Crashed schedules replay *faster* -- "
        "crash plans only remove steps.",
    )


def test_fault_wrapper_is_identity():
    """Correctness gate for the comparison: same final states/memory."""
    for name, make, inputs in WORKLOADS:
        bare = System(make())
        faulty = FaultyMemorySystem(make(), RegisterFaultPlan())
        for schedule in make_schedules(bare.protocol.n)[:5]:
            config_a, _ = bare.run(
                bare.initial_configuration(inputs), schedule, skip_halted=True
            )
            config_b, _ = faulty.run(
                faulty.initial_configuration(inputs), schedule,
                skip_halted=True,
            )
            assert config_a.states == config_b.states, name
            assert config_a.memory == config_b.memory, name


def test_faulty_replay_rounds3(benchmark):
    faulty = FaultyMemorySystem(CommitAdoptRounds(3), RegisterFaultPlan())
    schedules = make_schedules(3)
    benchmark(replay_workload, faulty, [0, 1, 1], schedules)


def test_bare_replay_rounds3(benchmark):
    bare = System(CommitAdoptRounds(3))
    schedules = make_schedules(3)
    benchmark(replay_workload, bare, [0, 1, 1], schedules)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
