"""E15 -- sharded exploration speedup and valency-cache hit rate.

Two questions, measured honestly on whatever hardware runs this:

1. *Speedup*: wall-clock of one wide bounded exploration under the
   sharded engine at 1/2/4 workers, pool spawn cost excluded (pools are
   created and warmed before timing -- in real runs one pool serves the
   whole construction).  Parallel results are asserted bit-identical to
   sequential before any timing is believed.  Speedup scales with
   *physical cores*: on a single-core container the sharded engine only
   adds IPC overhead, and this benchmark will say so.

2. *Cache hit rate*: the oracle query battery of a Theorem 1 run, cold
   (empty cache directory) vs warm (rerun against the same directory).
   Hit rate is ``1 - warm_explorations / cold_explorations`` -- the
   fraction of graph searches the second run did not have to repeat.

Standalone:  python benchmarks/bench_parallel.py [repeats]
Benchmark:   pytest benchmarks/bench_parallel.py --benchmark-only
"""

import sys
import tempfile
import time

from repro.analysis.explorer import Explorer
from repro.analysis.report import print_table
from repro.core.valency import ValencyOracle
from repro.model.system import System
from repro.parallel import ShardedExplorer, WorkerPool
from repro.protocols.consensus import CasConsensus, CommitAdoptRounds

#: The timed exploration: wide bounded BFS over the rounds protocol.
EXPLORE_PROTOCOL = lambda: CommitAdoptRounds(3)  # noqa: E731
EXPLORE_INPUTS = [0, 1, 0]
EXPLORE_KWARGS = dict(max_configs=60_000, max_depth=16, strict=False)

WORKER_COUNTS = (1, 2, 4)

#: The cache workload: the oracle queries the lemma drivers actually ask.
CACHE_WORKLOADS = [
    ("cas:3", lambda: CasConsensus(3), [0, 1, 1], dict(max_configs=50_000)),
    (
        "rounds:3",
        lambda: CommitAdoptRounds(3),
        [0, 1, 0],
        dict(max_configs=20_000, max_depth=12, strict=False),
    ),
]


def timed(fn, repeats: int = 3) -> float:
    """Best-of-N wall clock; best filters scheduler noise."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def explore_once(explorer):
    system = explorer.system
    root = system.initial_configuration(EXPLORE_INPUTS)
    return explorer.explore(root, frozenset(range(system.protocol.n)))


def measure_speedup(repeats: int = 3):
    system = System(EXPLORE_PROTOCOL())
    baseline = explore_once(Explorer(system, **EXPLORE_KWARGS))
    rows = []
    base_time = None
    for workers in WORKER_COUNTS:
        if workers == 1:
            explorer = ShardedExplorer(system, workers=1, **EXPLORE_KWARGS)
            pool = None
        else:
            pool = WorkerPool(workers)
            explorer = ShardedExplorer(
                system, workers=workers, pool=pool, **EXPLORE_KWARGS
            )
            # Warm the pool outside the timed region: spawn cost is paid
            # once per run in production, not once per exploration.
            explore_result = explore_once(explorer)
            assert explore_result.decided == baseline.decided
            assert explore_result.visited == baseline.visited
        seconds = timed(lambda: explore_once(explorer), repeats)
        if base_time is None:
            base_time = seconds
        rows.append(
            [
                workers,
                f"{seconds * 1e3:.0f}",
                f"{base_time / seconds:.2f}x",
                baseline.visited,
            ]
        )
        if pool is not None:
            pool.close()
    return rows


def run_cache_workload(make, inputs, kwargs, cache_dir):
    oracle = ValencyOracle(System(make()), cache_dir=cache_dir, **kwargs)
    root = oracle.system.initial_configuration(inputs)
    n = oracle.system.protocol.n
    subsets = [frozenset({pid}) for pid in range(n)]
    subsets.append(frozenset(range(n)))
    answers = {
        (pids, value): oracle.can_decide(root, pids, value)
        for pids in subsets
        for value in (0, 1)
    }
    stats = dict(oracle.stats)
    oracle.close()
    return answers, stats


def measure_cache():
    rows = []
    for name, make, inputs, kwargs in CACHE_WORKLOADS:
        with tempfile.TemporaryDirectory() as cache_dir:
            cold_answers, cold = run_cache_workload(
                make, inputs, kwargs, cache_dir
            )
            warm_answers, warm = run_cache_workload(
                make, inputs, kwargs, cache_dir
            )
            assert warm_answers == cold_answers
            explorations = cold["explorations"]
            hit_rate = (
                1.0 - warm["explorations"] / explorations
                if explorations
                else 1.0
            )
            rows.append(
                [
                    name,
                    explorations,
                    warm["explorations"],
                    warm["disk_hits"],
                    f"{hit_rate * 100:.0f}%",
                ]
            )
    return rows


def main(repeats: int = 3) -> None:
    import os

    cores = os.cpu_count() or 1
    print_table(
        f"E15a: sharded exploration speedup (best of {repeats}, "
        f"{cores} cores visible)",
        ["workers", "explore (ms)", "speedup", "configs"],
        measure_speedup(repeats),
        note="pool spawn cost excluded (one pool serves a whole run); "
        "speedup needs physical cores -- on a 1-core host the sharded "
        "engine only pays IPC overhead, by design of this measurement.",
    )
    print_table(
        "E15b: valency-cache hit rate (cold run, then warm rerun)",
        [
            "workload",
            "cold explorations",
            "warm explorations",
            "warm disk hits",
            "hit rate",
        ],
        measure_cache(),
        note="hit rate = explorations the warm rerun skipped; "
        "target >= 90%.",
    )


def test_parallel_results_match_sequential_before_timing():
    """Correctness gate for E15a: timing a wrong answer is meaningless."""
    system = System(EXPLORE_PROTOCOL())
    baseline = explore_once(Explorer(system, **EXPLORE_KWARGS))
    with WorkerPool(2) as pool:
        sharded = ShardedExplorer(
            system, workers=2, pool=pool, **EXPLORE_KWARGS
        )
        result = explore_once(sharded)
        assert result.decided == baseline.decided
        assert result.visited == baseline.visited


def test_warm_cache_hit_rate_target():
    """Correctness gate for E15b: warm reruns must skip >= 90% of the
    cold run's explorations (they skip all of them)."""
    for name, make, inputs, kwargs in CACHE_WORKLOADS:
        with tempfile.TemporaryDirectory() as cache_dir:
            _, cold = run_cache_workload(make, inputs, kwargs, cache_dir)
            _, warm = run_cache_workload(make, inputs, kwargs, cache_dir)
            if cold["explorations"]:
                rate = 1.0 - warm["explorations"] / cold["explorations"]
                assert rate >= 0.9, (name, cold, warm)


def test_sequential_explore_benchmark(benchmark):
    system = System(EXPLORE_PROTOCOL())
    explorer = Explorer(system, **EXPLORE_KWARGS)
    benchmark(explore_once, explorer)


def test_warm_cache_benchmark(benchmark):
    name, make, inputs, kwargs = CACHE_WORKLOADS[0]
    with tempfile.TemporaryDirectory() as cache_dir:
        run_cache_workload(make, inputs, kwargs, cache_dir)
        benchmark(run_cache_workload, make, inputs, kwargs, cache_dir)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
