#!/usr/bin/env python3
"""Regenerate every experiment table in EXPERIMENTS.md order.

    python benchmarks/run_all.py [--quick]

``--quick`` caps the Theorem 1 sweep at n=4 (the full sweep's n=5
through n=7 rows take from seconds to a minute each even with the
incremental engine); everything else runs in full.
"""

import sys
import time

import bench_theorem1
import bench_upper_bound
import bench_usage
import bench_violations
import bench_valency
import bench_bound_growth
import bench_perturbable
import bench_mutex_cost
import bench_encoding
import bench_leader_election
import bench_unbounded_values
import bench_kset
import bench_randomized
import bench_step_complexity
import bench_faults
import bench_parallel
import bench_obs
import bench_lint
import bench_incremental
import bench_ablation_memo
import bench_ablation_historyless
import bench_ablation_symmetry


def main() -> None:
    quick = "--quick" in sys.argv
    stages = [
        ("E1", lambda: bench_theorem1.main(4 if quick else 7)),
        ("E2", bench_upper_bound.main),
        ("E2b", bench_usage.main),
        ("E3", bench_violations.main),
        ("E4", bench_valency.main),
        ("E5", lambda: bench_bound_growth.main(4)),
        ("E6", bench_perturbable.main),
        ("E7", bench_mutex_cost.main),
        ("E8", bench_encoding.main),
        ("E9", bench_leader_election.main),
        ("E10", bench_unbounded_values.main),
        ("E11", bench_kset.main),
        ("E12", bench_randomized.main),
        ("E13", bench_step_complexity.main),
        ("E14", bench_faults.main),
        ("E15", lambda: bench_parallel.main(1 if quick else 3)),
        ("E16", lambda: bench_obs.main(3 if quick else 7)),
        ("E17", lambda: bench_lint.main(3 if quick else 9)),
        ("E18", lambda: bench_incremental.main(3 if quick else 4)),
        ("ablations A/B", bench_ablation_memo.main),
        ("ablation C", bench_ablation_historyless.main),
        ("ablation D", bench_ablation_symmetry.main),
    ]
    total_start = time.time()
    for label, stage in stages:
        start = time.time()
        stage()
        print(f"[{label} done in {time.time() - start:.1f}s]\n")
    print(f"all experiments regenerated in {time.time() - total_start:.1f}s")


if __name__ == "__main__":
    main()
