"""E13 (extension) -- worst-case step complexity vs the JTT time floor.

The lecture's Part I.1 bound is about *time and* space: deterministic
implementations pay >= n-1 (solo) steps as well as n-1 registers.
Measured: adversarial worst-case per-process step counts of the finite
wait-free protocols (exact, by memoised DFS over the reachable graph),
against the n-1 floor -- and the wait-freedom detector flagging the
obstruction-free protocols, whose step complexity is unbounded.

Standalone:  python benchmarks/bench_step_complexity.py
Benchmark:   pytest benchmarks/bench_step_complexity.py --benchmark-only
"""

from repro.analysis.complexity import valency_by_depth, worst_case_steps
from repro.analysis.report import print_table
from repro.errors import AdversaryError
from repro.model.system import System
from repro.protocols.consensus import (
    AdoptCommit,
    CasConsensus,
    CommitAdoptRounds,
    TasConsensus,
)


def measure(protocol, inputs):
    system = System(protocol)
    try:
        cost = max(
            worst_case_steps(system, inputs, pid)
            for pid in range(protocol.n)
        )
        return str(cost)
    except AdversaryError:
        return "unbounded (not wait-free)"


def main() -> None:
    from repro.model.registers import is_historyless

    rows = []
    cases = [
        (CasConsensus(2), [0, 1]),
        (CasConsensus(3), [0, 1, 0]),
        (CasConsensus(4), [0, 1, 0, 1]),
        (TasConsensus(), [0, 1]),
        (AdoptCommit(2), [0, 1]),
        (AdoptCommit(3), [0, 1, 1]),
        (CommitAdoptRounds(2), [0, 1]),
    ]
    for protocol, inputs in cases:
        historyless = all(
            is_historyless(spec.kind) for spec in protocol.object_specs()
        )
        rows.append(
            [
                protocol.name,
                protocol.n,
                "yes" if historyless else "no",
                protocol.n - 1,
                measure(protocol, inputs),
            ]
        )
    print_table(
        "E13: adversarial worst-case steps per process vs the JTT floor",
        ["protocol", "n", "historyless base", "floor n-1", "worst steps"],
        rows,
        note="the n-1 time floor binds implementations from HISTORYLESS "
        "bases: adopt-commit (registers) and tas-consensus respect it; "
        "CAS consensus undercuts it -- legitimately, its base object is "
        "outside JTT's set B; the OF round protocol is correctly flagged "
        "unbounded (a reachable racing cycle precedes its decisions)",
    )

    rows = []
    for depth, configs, bivalent in valency_by_depth(
        System(CasConsensus(3)), [0, 1, 0], max_depth=6
    ):
        rows.append([depth, configs, bivalent])
    print_table(
        "E13b: bivalence by depth, CAS consensus n=3",
        ["depth", "configurations", "bivalent"],
        rows,
        note="one CAS step settles the object: bivalence exists only at "
        "configurations where nobody touched it yet",
    )


def test_cas_one_step(benchmark):
    system = System(CasConsensus(3))
    cost = benchmark(worst_case_steps, system, [0, 1, 0], 0)
    assert cost == 1


def test_rounds_unbounded(benchmark):
    def run():
        try:
            worst_case_steps(
                System(CommitAdoptRounds(2)), [0, 1], 0, max_configs=50_000
            )
        except AdversaryError:
            return True
        return False

    assert benchmark.pedantic(run, rounds=1, iterations=1)


if __name__ == "__main__":
    main()
