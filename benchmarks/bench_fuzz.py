"""E20 -- fuzzing campaign throughput and oracle hit rates.

The corpus engine only pays for itself if campaigns get through enough
automata per unit budget to stand a chance of catching an engine
regression.  Measured, for a fixed-seed campaign at each shape preset:

* ``generated``/``filtered``/``explored`` -- corpus volume and the
  boring-filter's hit rate (a filter that never fires wastes its lint
  pass; one that eats everything starves the oracle);
* ``divergent`` -- must be 0 on honest engines (asserted): a nightly
  nonzero here is an engine soundness regression, not noise;
* ``states_per_second`` -- differential throughput (all engine legs)
  over wall-clock;
* the injected-sabotage leg -- the oracle must catch a lying engine
  within the same budget (asserted), which keeps the nightly campaign
  falsifiable rather than vacuously green.

Standalone:  python benchmarks/bench_fuzz.py [count]
Benchmark:   pytest benchmarks/bench_fuzz.py --benchmark-only
Writes:      BENCH_fuzz.json next to the repo root (CI artifact).
"""

import json
import sys
import time
from pathlib import Path

from repro.analysis.report import print_table
from repro.fuzz.campaign import CampaignConfig, run_campaign
from repro.fuzz.generator import GeneratorConfig
from repro.parallel import WorkerPool

WORKERS = 2

#: (preset name, generator shape).
PRESETS = [
    ("tiny-2p", GeneratorConfig(n=(2, 2), states=(3, 5), registers=(1, 2))),
    ("mixed-ops", GeneratorConfig(
        n=(2, 3), states=(3, 6), registers=(1, 3),
        op_weights=(("read", 2), ("write", 2), ("swap", 2), ("tas", 2)),
    )),
    ("decide-sparse", GeneratorConfig(
        n=(2, 2), states=(4, 7), registers=(1, 2), decide_density=0.08,
    )),
]

RESULT_FILE = Path(__file__).parent.parent / "BENCH_fuzz.json"


def campaign_config(generator, count, **overrides) -> CampaignConfig:
    return CampaignConfig(
        seed=20,
        count=count,
        mutants=1,
        generator=generator,
        max_configs=1_500,
        max_depth=24,
        **overrides,
    )


def measure(count: int = 12, tmp_root: Path = None):
    import tempfile

    tmp_root = tmp_root or Path(tempfile.mkdtemp(prefix="bench-fuzz-"))
    results = []
    with WorkerPool(WORKERS) as pool:
        for name, generator in PRESETS:
            config = campaign_config(
                generator, count, zoo_root=tmp_root / name
            )
            start = time.perf_counter()
            outcome = run_campaign(config, pool=pool)
            elapsed = time.perf_counter() - start
            stats = outcome.stats
            assert stats["divergent"] == 0, (
                f"{name}: honest engines diverged: {outcome.divergent}"
            )
            results.append({
                "preset": name,
                "generated": stats["generated"],
                "filtered": stats["filtered"],
                "explored": stats["explored"],
                "divergent": stats["divergent"],
                "zoo_added": stats["zoo_added"],
                "spent_states": stats["spent"],
                "elapsed_s": round(elapsed, 4),
                "states_per_second": round(stats["spent"] / elapsed, 1)
                if elapsed > 0 else 0.0,
            })
        # The falsifiability leg: a sabotaged engine must be caught.
        config = campaign_config(
            PRESETS[0][1], count,
            zoo_root=tmp_root / "inject", inject="forget-value",
        )
        start = time.perf_counter()
        outcome = run_campaign(config, pool=pool)
        elapsed = time.perf_counter() - start
        assert outcome.stats["divergent"] > 0, (
            "the oracle failed to catch the sabotaged engine"
        )
        results.append({
            "preset": "inject:forget-value",
            "generated": outcome.stats["generated"],
            "filtered": outcome.stats["filtered"],
            "explored": outcome.stats["explored"],
            "divergent": outcome.stats["divergent"],
            "zoo_added": outcome.stats["zoo_added"],
            "spent_states": outcome.stats["spent"],
            "elapsed_s": round(elapsed, 4),
            "states_per_second": round(
                outcome.stats["spent"] / elapsed, 1
            ) if elapsed > 0 else 0.0,
        })
    return results


def main(count: int = 12) -> None:
    results = measure(count)
    print_table(
        f"E20: fuzz campaign throughput (count={count}, seed=20)",
        ["preset", "generated", "filtered", "explored", "divergent",
         "zoo", "states", "states/s"],
        [
            [
                row["preset"], row["generated"], row["filtered"],
                row["explored"], row["divergent"], row["zoo_added"],
                row["spent_states"], f"{row['states_per_second']:.0f}",
            ]
            for row in results
        ],
        note="honest presets must show divergent=0; the inject leg "
        "must show divergent>0 (oracle falsifiability).",
    )
    RESULT_FILE.write_text(
        json.dumps(
            {
                "bench": "fuzz-campaign",
                "count": count,
                "seed": 20,
                "workers": WORKERS,
                "results": results,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
    print(f"results written to {RESULT_FILE}")


def test_campaign_rates_and_falsifiability():
    """The satellite gate: honest engines clean, saboteur caught."""
    results = measure(count=6)
    honest = [r for r in results if not r["preset"].startswith("inject")]
    inject = [r for r in results if r["preset"].startswith("inject")]
    assert all(r["divergent"] == 0 for r in honest), results
    assert all(r["divergent"] > 0 for r in inject), results
    assert all(r["explored"] > 0 for r in honest), results


def test_campaign_throughput(benchmark):
    import tempfile

    tmp = Path(tempfile.mkdtemp(prefix="bench-fuzz-pt-"))
    with WorkerPool(WORKERS) as pool:

        def run():
            run_campaign(
                campaign_config(PRESETS[0][1], 6, zoo_root=tmp / "z"),
                pool=pool,
            )

        run()  # warm the pool outside the clock
        benchmark(run)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 12)
