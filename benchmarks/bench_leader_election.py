"""E9 -- the intro's "evidence": weak leader election in o(n) registers.

Paper (Section 1): weak leader election needs only O(log n) registers
[GHHW15], which once suggested consensus might too -- Theorem 1 says no.
Measured: register counts of the splitter election (O(log n)) vs
consensus (n) across n, safety (never two leaders) over random runs, and
the election success rate under contention (the liveness price of the
simplified protocol; see DESIGN.md).

Standalone:  python benchmarks/bench_leader_election.py
Benchmark:   pytest benchmarks/bench_leader_election.py --benchmark-only
"""

import math
import random

from repro.analysis.report import print_table
from repro.model.schedule import random_bursty_schedule
from repro.model.system import System
from repro.protocols.consensus import CommitAdoptRounds
from repro.protocols.leader_election import SplitterElection, TournamentElection


def contended_elections(n: int, trials: int, seed: int = 0):
    protocol = SplitterElection(n)
    system = System(protocol)
    rng = random.Random(seed)
    elected = 0
    for _ in range(trials):
        config = system.initial_configuration([None] * n)
        schedule = random_bursty_schedule(list(range(n)), 40 * n, rng)
        config, _ = system.run(config, schedule, skip_halted=True)
        for pid in range(n):
            config, _ = system.solo_run(config, pid, 1_000)
        leaders = [
            pid for pid in range(n) if system.decision(config, pid) is True
        ]
        assert len(leaders) <= 1, "two leaders: safety broken"
        elected += len(leaders)
    return elected


def main() -> None:
    rows = []
    trials = 60
    for n in (4, 8, 16, 64, 256):
        splitter = SplitterElection(n)
        elected = contended_elections(n, trials, seed=n)
        rows.append(
            [
                n,
                splitter.num_objects,
                math.ceil(math.log2(n)) + 2,
                TournamentElection(n).num_objects,
                CommitAdoptRounds(n).num_objects,
                f"{100 * elected / trials:.0f}%",
            ]
        )
    print_table(
        "E9: weak leader election vs consensus register counts",
        [
            "n",
            "splitter election",
            "ceil(log2 n)+2",
            "tournament (T&S objs)",
            "consensus (regs)",
            "elected under contention",
        ],
        rows,
        note="o(n) registers suffice for election (never two leaders in "
        f"{trials} contended runs per n); consensus is stuck at n-1",
    )


def test_election_register_count(benchmark):
    def count():
        return [SplitterElection(n).num_objects for n in (4, 64, 1024)]

    counts = benchmark(count)
    assert counts[-1] <= 12


def test_contended_elections_n16(benchmark):
    elected = benchmark.pedantic(
        contended_elections, args=(16, 20), rounds=1, iterations=1
    )
    assert 0 <= elected <= 20


if __name__ == "__main__":
    main()
