"""E18 -- incremental valency engine: speedup with identical certificates.

The incremental engine (:mod:`repro.core.incremental`) memoises the
pure model functions under the valency oracle -- process-state step
effects, canonical query keys, decisions -- and interns configurations
so every memo is one dictionary probe.  Memoising pure functions is
invisible to the search, so the *only* observable difference against a
cold oracle must be wall-clock.  Measured, per workload:

* paired-median adversary wall-clock, cold (``incremental=False``) vs
  incremental (the default), interleaved rounds so drift cancels;
* byte-equality of the serialized certificates (asserted before any
  timing is believed);
* the engine's own hit counters (``intern.hits``, ``incremental.*``)
  from an observed run.

Target (asserted): paired-median speedup >= 2x on the n=4 adversary.
The n=5 row of E1 runs >= 5x but takes a minute cold, so the default
table stops at n=4; pass a higher ``max_n`` to reproduce the E1 row.

Standalone:  python benchmarks/bench_incremental.py [max_n]
Benchmark:   pytest benchmarks/bench_incremental.py --benchmark-only
Writes:      BENCH_incremental.json next to the repo root (CI artifact).
"""

import gc
import json
import sys
import time
from pathlib import Path

from repro.analysis.report import print_table
from repro.core.serialize import to_json
from repro.core.theorem import space_lower_bound
from repro.model.system import System
from repro.obs import MetricsRegistry, observe
from repro.protocols.consensus import CommitAdoptRounds

#: Paired-median speedup the suite asserts on the n=4 adversary.
MIN_SPEEDUP_N4 = 2.0

#: Oracle budgets per n (matches benchmarks/bench_theorem1.py).
BUDGETS = {
    3: (40_000, 80),
    4: (40_000, 80),
    5: (80_000, 100),
}

RESULT_FILE = Path(__file__).parent.parent / "BENCH_incremental.json"


def adversary(n: int, incremental: bool):
    configs, depth = BUDGETS.get(n, (80_000, 100))
    return space_lower_bound(
        System(CommitAdoptRounds(n)),
        strict=False,
        max_configs=configs,
        max_depth=depth,
        incremental=incremental,
    )


def certificates_identical(n: int) -> bool:
    """Byte-equality gate: timing a wrong answer is meaningless."""
    return to_json(adversary(n, False)) == to_json(adversary(n, True))


def paired_medians(n: int, repeats: int = 5):
    """Median cold and incremental wall-clock over interleaved rounds.

    Interleaving puts both legs under the same slow drift (CPU
    frequency, cache warmth); comparing medians of paired rounds is
    what the CI gate asserts, so one noisy round cannot flip it.
    """
    cold_samples, incr_samples = [], []
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            for incremental, samples in (
                (False, cold_samples),
                (True, incr_samples),
            ):
                gc.collect()
                start = time.perf_counter()
                adversary(n, incremental)
                samples.append(time.perf_counter() - start)
    finally:
        if was_enabled:
            gc.enable()
    return median(cold_samples), median(incr_samples)


def median(values) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def engine_counters(n: int):
    """Intern/seed counters of one observed incremental run."""
    registry = MetricsRegistry()
    with observe(metrics=registry):
        adversary(n, True)
    snapshot = registry.snapshot()
    counters = snapshot.get("counters", snapshot)
    return {
        name: counters.get(name, 0)
        for name in (
            "intern.hits",
            "intern.misses",
            "incremental.seeded",
            "incremental.cold",
        )
    }


def measure(max_n: int = 4, repeats: int = 5):
    rows, payload = [], {}
    for n in range(3, max_n + 1):
        assert certificates_identical(n), (
            f"incremental engine changed the n={n} certificate"
        )
        cold_s, incr_s = paired_medians(n, repeats)
        speedup = cold_s / incr_s if incr_s else float("inf")
        counters = engine_counters(n)
        hits, misses = counters["intern.hits"], counters["intern.misses"]
        intern_rate = hits / (hits + misses) if hits + misses else 0.0
        rows.append(
            [
                f"rounds:{n}",
                f"{cold_s * 1e3:.0f}",
                f"{incr_s * 1e3:.0f}",
                f"{speedup:.1f}x",
                f"{intern_rate * 100:.0f}%",
                counters["incremental.seeded"],
                counters["incremental.cold"],
                "identical",
            ]
        )
        payload[f"rounds:{n}"] = {
            "cold_s": cold_s,
            "incremental_s": incr_s,
            "speedup": speedup,
            "certificates_identical": True,
            **counters,
        }
    return rows, payload


def main(max_n: int = 4, repeats: int = 5) -> None:
    rows, payload = measure(max_n, repeats)
    print_table(
        f"E18: incremental valency engine (paired medians of {repeats} "
        "interleaved rounds)",
        [
            "workload",
            "cold (ms)",
            "incremental (ms)",
            "speedup",
            "intern hit rate",
            "seeded",
            "cold searches",
            "certificate",
        ],
        rows,
        note="certificates byte-identical before timing is believed; "
        "CI asserts >= 2x at n=4 (the E1 n=5 row runs >= 5x, see "
        "EXPERIMENTS.md E18).",
    )
    RESULT_FILE.write_text(json.dumps(payload, indent=2, sort_keys=True))
    print(f"wrote {RESULT_FILE.name}")


def test_certificates_identical_n3():
    assert certificates_identical(3)


def test_incremental_speedup_n4():
    """CI gate: paired-median speedup >= 2x with identical certificates."""
    assert certificates_identical(4)
    cold_s, incr_s = paired_medians(4, repeats=3)
    assert cold_s / incr_s >= MIN_SPEEDUP_N4, (cold_s, incr_s)


def test_adversary_benchmark(benchmark):
    certificate = benchmark(adversary, 3, True)
    assert certificate.bound == 2


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
