"""E7 -- mutual exclusion total work: Omega(n log n), tight (Fan-Lynch).

Lecture Part II: any deterministic mutex algorithm costs Omega(n log n)
in the state-change model on some canonical execution; Yang-Anderson-
style tournaments achieve O(n log n); Peterson's filter pays O(n^3).
Measured: canonical-execution costs for tournament, bakery and Peterson
across n, with per-curve growth exponents estimated from successive
doublings.

Standalone:  python benchmarks/bench_mutex_cost.py
Benchmark:   pytest benchmarks/bench_mutex_cost.py --benchmark-only
"""

import math

from repro.analysis.report import print_table
from repro.model.system import System
from repro.mutex import (
    BakeryMutex,
    PetersonFilter,
    TournamentMutex,
    contended_canonical_run,
    sequential_canonical_run,
)

ALGORITHMS = (
    ("tournament", TournamentMutex),
    ("bakery", BakeryMutex),
    ("peterson", PetersonFilter),
)


def measure(make, n: int, contended: bool = False) -> int:
    system = System(make(n, sessions=1))
    if contended:
        return contended_canonical_run(system).cost
    return sequential_canonical_run(system, list(range(n))).cost


def main() -> None:
    sizes = (4, 8, 16, 32)
    costs = {name: [] for name, _ in ALGORITHMS}
    rows = []
    for n in sizes:
        row = [n, round(n * math.log2(n), 0)]
        for name, make in ALGORITHMS:
            cost = measure(make, n)
            costs[name].append(cost)
            row.append(cost)
        rows.append(row)
    print_table(
        "E7a: canonical execution cost, state-change model (sequential)",
        ["n", "n*log2(n)", "tournament", "bakery", "peterson"],
        rows,
    )

    rows = []
    for name, _ in ALGORITHMS:
        exponents = [
            math.log2(costs[name][i + 1] / costs[name][i])
            for i in range(len(sizes) - 1)
        ]
        rows.append(
            [name, *(f"{e:.2f}" for e in exponents)]
        )
    print_table(
        "E7b: growth exponent between successive doublings (log2 ratio)",
        ["algorithm", "4->8", "8->16", "16->32"],
        rows,
        note="~1 + o(1) = n log n (tournament); ~2 = n^2 (bakery); "
        "~3 = n^3 (peterson) -- who wins matches the lecture",
    )

    rows = []
    for n in (4, 8, 12):
        row = [n]
        for name, make in ALGORITHMS:
            row.append(measure(make, n, contended=True))
        rows.append(row)
    print_table(
        "E7c: contended canonical executions (round-robin scheduler)",
        ["n", "tournament", "bakery", "peterson"],
        rows,
        note="contention costs more but preserves the ordering",
    )


def test_tournament_cost_n16(benchmark):
    cost = benchmark(measure, TournamentMutex, 16)
    assert cost < measure(PetersonFilter, 16)


def test_contended_tournament_n8(benchmark):
    cost = benchmark.pedantic(
        measure, args=(TournamentMutex, 8, True), rounds=1, iterations=1
    )
    assert cost > 0


if __name__ == "__main__":
    main()
