"""E8 -- the encoder/decoder argument: log2(n!) bits force n log n cost.

Lecture Part II: (1) canonical executions are encodable in O(cost) bits
and decodable by replaying the algorithm; (2) the code is injective on
the n! CS permutations, so some codeword -- hence some execution's cost
-- is Omega(log2(n!)) = Omega(n log n).  Measured: round-trip identity
over all permutations for small n, codeword lengths vs the information
floor, and the |E|/cost ratio staying bounded for the tight algorithm.

Standalone:  python benchmarks/bench_encoding.py
Benchmark:   pytest benchmarks/bench_encoding.py --benchmark-only
"""

import itertools
import random

from repro.analysis.report import print_table
from repro.model.system import System
from repro.mutex import TournamentMutex, sequential_canonical_run
from repro.mutex.encoding import (
    decode_run,
    encode_run,
    information_floor_bits,
)


def all_permutation_codewords(n: int):
    system = System(TournamentMutex(n, sessions=1))
    lengths = []
    for permutation in itertools.permutations(range(n)):
        run = sequential_canonical_run(system, list(permutation))
        encoded = encode_run(run)
        decoded = decode_run(encoded, System(TournamentMutex(n, sessions=1)))
        assert decoded == permutation, "decoder failed to invert encoder"
        lengths.append((len(encoded), run.cost))
    return lengths


def sampled_codewords(n: int, samples: int, seed: int = 0):
    system = System(TournamentMutex(n, sessions=1))
    rng = random.Random(seed)
    lengths = []
    for _ in range(samples):
        permutation = list(range(n))
        rng.shuffle(permutation)
        run = sequential_canonical_run(system, permutation)
        lengths.append((len(encode_run(run)), run.cost))
    return lengths


def main() -> None:
    rows = []
    for n in (3, 4, 5, 6):
        lengths = all_permutation_codewords(n)
        max_bits = max(bits for bits, _ in lengths)
        max_cost = max(cost for _, cost in lengths)
        rows.append(
            [
                n,
                len(lengths),
                f"{information_floor_bits(n):.1f}",
                max_bits,
                max_cost,
                f"{max_bits / max_cost:.2f}",
            ]
        )
    print_table(
        "E8a: round-trip over ALL permutations (tournament mutex)",
        [
            "n",
            "permutations",
            "log2(n!) floor",
            "max |E| bits",
            "max cost",
            "bits/cost",
        ],
        rows,
        note="decode(encode(run)) == pi for every permutation; max |E| "
        "dominates the floor, and bits/cost stays bounded",
    )

    rows = []
    for n in (8, 16, 32):
        lengths = sampled_codewords(n, samples=30, seed=n)
        avg_bits = sum(bits for bits, _ in lengths) / len(lengths)
        avg_cost = sum(cost for _, cost in lengths) / len(lengths)
        rows.append(
            [
                n,
                f"{information_floor_bits(n):.0f}",
                f"{avg_bits:.0f}",
                f"{avg_cost:.0f}",
                f"{avg_bits / avg_cost:.2f}",
            ]
        )
    print_table(
        "E8b: sampled permutations at larger n",
        ["n", "log2(n!)", "avg |E| bits", "avg cost", "bits/cost"],
        rows,
        note="bits/cost bounded => cost = Omega(log2(n!)) = Omega(n log n)",
    )


def test_roundtrip_all_n4(benchmark):
    lengths = benchmark(all_permutation_codewords, 4)
    assert len(lengths) == 24


def test_sampled_n16(benchmark):
    lengths = benchmark.pedantic(
        sampled_codewords, args=(16, 10), rounds=1, iterations=1
    )
    assert all(bits > 0 for bits, _ in lengths)


if __name__ == "__main__":
    main()
