"""E6 -- perturbable objects need n-1 registers and n-1 solo steps (JTT).

Lecture Part I.1 (Jayanti-Tan-Toueg / Attiya et al.): obstruction-free
counters (and snapshots) from historyless primitives have space and solo
step complexity >= n-1.  Measured: the executable covering induction
pins n-1 registers on the array counter and snapshot; the reader's solo
operation touches all n-1 of them; under-provisioned counters yield
linearizability-violation witnesses instead.

Standalone:  python benchmarks/bench_perturbable.py
Benchmark:   pytest benchmarks/bench_perturbable.py --benchmark-only
"""

import pytest

from repro.analysis.report import print_table
from repro.errors import ViolationError
from repro.model.system import System
from repro.perturbable import (
    ArrayCounter,
    LossySharedCounter,
    SingleWriterSnapshot,
    covering_induction,
)


def induce(protocol):
    system = System(protocol)
    return covering_induction(
        system,
        workers=protocol.workers,
        reader=protocol.reader,
        ops_to_perturb=protocol.ops_to_perturb,
        completes_operation=protocol.completes_operation,
    )


def main() -> None:
    rows = []
    for make, sizes in ((ArrayCounter, (2, 3, 4, 6, 8, 12)),
                        (SingleWriterSnapshot, (2, 3, 4, 6))):
        for n in sizes:
            certificate = induce(make(n))
            rows.append(
                [
                    certificate.protocol_name,
                    n,
                    n - 1,
                    certificate.bound,
                    len(certificate.reader_registers),
                    certificate.reader_steps,
                ]
            )
    print_table(
        "E6a: JTT covering induction on perturbable objects",
        [
            "object",
            "n",
            "bound n-1",
            "registers covered",
            "reader registers",
            "reader solo steps",
        ],
        rows,
        note="space AND solo time both reach n-1, as the lecture states",
    )

    rows = []
    for n, k in ((4, 2), (6, 3), (8, 4)):
        protocol = LossySharedCounter(n, k)
        try:
            induce(protocol)
            verdict = "UNEXPECTEDLY SURVIVED"
        except ViolationError as exc:
            verdict = f"violation witness, {len(exc.witness)} steps"
        rows.append([protocol.name, n, k, n - 1, verdict])
    print_table(
        "E6b: counters below n-1 registers are not linearizable",
        ["object", "n", "registers", "needed", "adversary outcome"],
        rows,
    )


def test_array_counter_n6(benchmark):
    certificate = benchmark(induce, ArrayCounter(6))
    assert certificate.bound == 5


def test_lossy_counter_violates(benchmark):
    def run():
        with pytest.raises(ViolationError):
            induce(LossySharedCounter(6, 3))

    benchmark(run)


if __name__ == "__main__":
    main()
