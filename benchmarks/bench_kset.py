"""E11 -- conclusion's outlook: k-set agreement from n-k+1 registers.

Paper (conclusion): consensus is 1-set agreement; the best k-set
protocols use n-k+1 registers [BRS15], and an Omega(n-k) bound is open.
Measured: the partition protocol's register count is exactly n-k+1, and
randomized + bounded-exhaustive checking confirms at most k distinct
decisions on all-distinct inputs (the hardest case).

Standalone:  python benchmarks/bench_kset.py
Benchmark:   pytest benchmarks/bench_kset.py --benchmark-only
"""

from repro.analysis.checker import (
    check_consensus_exhaustive,
    check_consensus_random,
)
from repro.analysis.report import print_table
from repro.model.system import System
from repro.protocols.consensus import KSetPartition


def verify_kset(n: int, k: int):
    protocol = KSetPartition(n, k)
    system = System(protocol)
    inputs = list(range(n))  # all distinct: maximal decision pressure
    random_result = check_consensus_random(
        system, inputs, k=k, runs=20, schedule_length=120 * n, seed=n * 10 + k
    )
    assert random_result.ok, random_result.first_violation()
    bounded = check_consensus_exhaustive(
        system, inputs, k=k, max_configs=25_000, strict=False
    )
    assert bounded.ok
    return protocol.num_objects


def main() -> None:
    rows = []
    for n, k in [(3, 1), (3, 2), (4, 2), (5, 2), (5, 3), (6, 3), (6, 5)]:
        registers = verify_kset(n, k)
        rows.append([n, k, registers, n - k + 1, n - k, "ok"])
    print_table(
        "E11: k-set agreement from n-k+1 registers (BRS15 upper bound)",
        [
            "n",
            "k",
            "registers",
            "BRS15 n-k+1",
            "conjectured floor n-k",
            "checking",
        ],
        rows,
        note="registers == n-k+1 for every (n, k); at most k values "
        "decided on all-distinct inputs",
    )


def test_kset_4_2(benchmark):
    registers = benchmark.pedantic(
        verify_kset, args=(4, 2), rounds=1, iterations=1
    )
    assert registers == 3


if __name__ == "__main__":
    main()
