"""Ablation -- where the covering argument needs historyless overwriting.

The block-write step of the proof relies on writes *obliterating*
whatever a hidden process left in the covered registers, without the
block writers noticing.  The paper's conclusion points out this is
delicate beyond plain registers: a swap sees the value it overwrites.

This bench tests obliteration directly per object kind: from a
configuration where the coverer R is poised at its state-changing
operation, compare the executions

    hidden-write-by-z . block-op-by-R    vs    block-op-by-R

If R (and the memory) end up indistinguishable, the hidden write was
obliterated (the covering argument's engine works); otherwise the
object kind leaks the hidden step -- exactly the classification the
paper gives: registers obliterate, swap/T&S/CAS see too much.

Standalone:  python benchmarks/bench_ablation_historyless.py
Benchmark:   pytest benchmarks/bench_ablation_historyless.py --benchmark-only
"""

from repro.analysis.report import print_table
from repro.model.program import ProgramBuilder, ProgramProtocol
from repro.model.registers import (
    ObjectKind,
    cas_object,
    faa_object,
    is_historyless,
    register,
    swap_register,
    tas_object,
)
from repro.model.system import System


def _writer_program(kind: ObjectKind):
    # The traversal ends in a decide carrying everything the process
    # observed -- responses are part of its state, and halting would
    # discard exactly the information that distinguishes the runs.
    builder = ProgramBuilder()
    builder.assign("old", "(none)")
    if kind is ObjectKind.REGISTER:
        builder.write(0, lambda e: ("mark", e["me"]))
    elif kind is ObjectKind.SWAP:
        builder.swap(0, lambda e: ("mark", e["me"]), "old")
    elif kind is ObjectKind.TEST_AND_SET:
        builder.test_and_set(0, "old")
    elif kind is ObjectKind.CAS:
        builder.compare_and_swap(
            0, None, lambda e: ("mark", e["me"]), "old"
        )
    else:
        builder.fetch_and_add(0, 1, "old")
    builder.read(0, "final")
    builder.decide(lambda e: (e["old"], e["final"]))
    return builder.build()


SPECS = {
    ObjectKind.REGISTER: register(None),
    ObjectKind.SWAP: swap_register(None),
    ObjectKind.TEST_AND_SET: tas_object(),
    ObjectKind.CAS: cas_object(None),
    ObjectKind.FETCH_AND_ADD: faa_object(0),
}


def obliterates(kind: ObjectKind) -> bool:
    """Does R's poised operation hide z's earlier operation from R?"""
    program = _writer_program(kind)
    protocol = ProgramProtocol(
        f"cover-{kind.value}",
        2,
        [SPECS[kind]],
        [program, program],
        lambda pid, value: {"me": pid},
    )
    system = System(protocol)
    base = system.initial_configuration([None, None])
    # Execution A: R = p0 performs its operation directly.
    direct, _ = system.run(base, [0, 0])
    # Execution B: z = p1 sneaks its operation in first.
    hidden, _ = system.run(base, [1])
    after, _ = system.run(hidden, [0, 0])
    return direct.indistinguishable_to(after, [0])


def main() -> None:
    rows = []
    for kind in ObjectKind:
        rows.append(
            [
                kind.value,
                "yes" if is_historyless(kind) else "no",
                "yes" if obliterates(kind) else "NO -- leaks the hidden op",
            ]
        )
    print_table(
        "ablation C: block-write obliteration by base-object kind",
        ["object kind", "historyless (JTT)", "obliterates hidden write?"],
        rows,
        note="only plain registers obliterate blindly; swap and test&set "
        "are historyless yet see what they overwrite -- the exact "
        "difficulty the paper's conclusion flags for extending the bound",
    )


def test_register_obliterates(benchmark):
    assert benchmark(obliterates, ObjectKind.REGISTER)


def test_swap_leaks(benchmark):
    assert not benchmark(obliterates, ObjectKind.SWAP)


def test_cas_leaks(benchmark):
    def probe_all():
        return [
            obliterates(kind)
            for kind in (
                ObjectKind.CAS,
                ObjectKind.TEST_AND_SET,
                ObjectKind.FETCH_AND_ADD,
            )
        ]

    assert benchmark(probe_all) == [False, False, False]


if __name__ == "__main__":
    main()
