"""E10 -- registers of unbounded size do not help (Section 1).

Paper: "the bound holds even if the registers are of unbounded size ...
having large registers cannot compensate for having too few registers."
Measured: along the adversarial executions, the round-protocol's
register *contents* grow (rounds are unbounded integers), yet the number
of distinct registers the certificate pins is n-1 regardless; and
extended adversarial stress runs grow values further without changing
the covered-register count.

Standalone:  python benchmarks/bench_unbounded_values.py
Benchmark:   pytest benchmarks/bench_unbounded_values.py --benchmark-only
"""

from repro.analysis.report import print_table
from repro.model.system import System
from repro.protocols.consensus import CommitAdoptRounds

try:
    from benchmarks.bench_theorem1 import run_adversary
except ImportError:  # standalone: python benchmarks/bench_unbounded_values.py
    from bench_theorem1 import run_adversary


def value_bits(value) -> int:
    """Rough encoded size of a register value, in bits."""
    if value is None:
        return 1
    round_number, proposal, vote = value
    bits = max(1, int(round_number).bit_length()) + 2
    if vote is not None:
        bits += 3
    return bits


def max_value_bits_along(system, schedule) -> int:
    config = system.initial_configuration(
        [0, 1] + [0] * (system.protocol.n - 2)
    )
    worst = max(value_bits(v) for v in config.memory)
    for pid in schedule:
        config, _ = system.step(config, pid)
        worst = max(worst, max(value_bits(v) for v in config.memory))
    return worst


def stress_rounds(n: int, steps: int, seed: int = 0):
    """Let rounds race for a long time; report value growth and the
    number of registers ever written.

    Strict alternation of two racers keeps every round conflicted (each
    collect sees the other's opposing proposal), so neither process ever
    decides and rounds -- hence register contents -- grow forever.
    """
    del seed  # the adversarial schedule is deterministic
    protocol = CommitAdoptRounds(n)
    system = System(protocol)
    config = system.initial_configuration([i % 2 for i in range(n)])
    written = set()
    worst_bits = 0
    for index in range(steps):
        pid = index % 2
        if not system.enabled(config, pid):
            break
        config, step = system.step(config, pid)
        if step.op.is_write:
            written.add(step.op.obj)
        worst_bits = max(
            worst_bits, max(value_bits(v) for v in config.memory)
        )
    return worst_bits, len(written)


def main() -> None:
    rows = []
    for n in (2, 3, 4):
        certificate, _ = run_adversary(n)
        system = System(CommitAdoptRounds(n))
        schedule = certificate.alpha + certificate.phi + certificate.zeta
        bits = max_value_bits_along(system, schedule)
        rows.append([n, len(schedule), bits, certificate.bound, n - 1])
    print_table(
        "E10a: register value size vs registers pinned (adversarial runs)",
        [
            "n",
            "steps",
            "max value bits",
            "registers pinned",
            "bound n-1",
        ],
        rows,
    )

    rows = []
    for steps in (200, 2_000, 20_000):
        bits, written = stress_rounds(4, steps, seed=steps)
        rows.append([4, steps, bits, written])
    print_table(
        "E10b: two racers stress rounds -- values grow, register set stays",
        ["n", "race steps", "max value bits", "distinct registers written"],
        rows,
        note="register contents grow without bound (rounds), the set of "
        "registers does not: big values never substitute for registers",
    )


def test_stress_values_grow(benchmark):
    bits, written = benchmark.pedantic(
        stress_rounds, args=(4, 5_000), rounds=1, iterations=1
    )
    small_bits, _ = stress_rounds(4, 100)
    assert bits > small_bits
    assert written <= 2


if __name__ == "__main__":
    main()
