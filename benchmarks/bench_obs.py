"""E16 -- observability overhead: NullSink tracing must be near-free.

The instrumentation of the adversary stack (explorer edge/dedup
counters, oracle query mirrors, lemma events, spans) is always compiled
in; what keeps it honest is that under the default observation -- a
:class:`~repro.obs.trace.NullSink` tracer plus a live in-process
registry -- each instrument costs one attribute check or increment.
Measured: wall-clock of complete Theorem 1 adversary runs

* ``baseline``  -- under :func:`~repro.obs.runtime.unobserved` (a
  :class:`~repro.obs.metrics.NullRegistry`, every instrument a shared
  no-op: the closest runnable stand-in for un-instrumented code);
* ``nullsink``  -- the default observation (live registry, no tracing);
* ``traced``    -- full JSONL journal + metrics via
  :func:`~repro.obs.runtime.observe`.

Target (asserted): nullsink overhead over baseline < 5%.  The traced
column is informational -- journals flush per record, so it buys
durability with real I/O.

Standalone:  python benchmarks/bench_obs.py [repeats]
Benchmark:   pytest benchmarks/bench_obs.py --benchmark-only
Writes:      BENCH_obs.json next to the repo root (CI artifact).
"""

import gc
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.analysis.report import print_table
from repro.faults import run_adversary_guarded
from repro.model.system import System
from repro.obs import JsonlSink, MetricsRegistry, Tracer, observe, unobserved
from repro.protocols.consensus import CommitAdoptRounds, TasConsensus

#: Overhead bound the suite asserts for the default observation.
MAX_NULLSINK_OVERHEAD = 0.05

#: (name, protocol factory, runs per timed call) for the adversary
#: workloads.  Iteration counts keep each timed leg in the tens of
#: milliseconds, where fixed per-call costs and timer noise are small
#: against the work being measured.
WORKLOADS = [
    ("rounds:3", lambda: CommitAdoptRounds(3), 5),
    ("tas:2", lambda: TasConsensus(2), 300),
]

RESULT_FILE = Path(__file__).parent.parent / "BENCH_obs.json"


def adversary_run(make) -> None:
    outcome = run_adversary_guarded(System(make()))
    assert outcome.status == "certificate", outcome.describe()


def timed_interleaved(legs, repeats: int = 7):
    """Per-leg wall-clock samples, one per leg per round, interleaved.

    Timing each leg in its own block lets slow drift (CPU frequency,
    cache warmth) masquerade as tens of percent of "overhead" between
    legs; round-robin repeats put every leg under the same drift, and
    callers compare legs *within* a round (paired), so what drift
    remains cancels.
    """
    samples = [[] for _ in legs]
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            for index, leg in enumerate(legs):
                gc.collect()
                start = time.perf_counter()
                leg()
                samples[index].append(time.perf_counter() - start)
    finally:
        if was_enabled:
            gc.enable()
    return samples


def median(values) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def measure(repeats: int = 7):
    """Per-workload timings for the three observation modes."""
    results = []
    for name, make, iters in WORKLOADS:
        def baseline():
            with unobserved():
                for _ in range(iters):
                    adversary_run(make)

        def nullsink():
            with observe(metrics=MetricsRegistry()):
                for _ in range(iters):
                    adversary_run(make)

        def traced():
            with tempfile.TemporaryDirectory() as tmp:
                tracer = Tracer(JsonlSink(Path(tmp) / "journal.jsonl"))
                try:
                    with observe(tracer=tracer, metrics=MetricsRegistry()):
                        for _ in range(iters):
                            adversary_run(make)
                finally:
                    tracer.close()

        # Warm once so import/alloc noise lands outside the clocks.
        baseline()
        nullsink()
        base_s, null_s, traced_s = timed_interleaved(
            [baseline, nullsink, traced], repeats
        )
        results.append(
            {
                "workload": name,
                "iterations": iters,
                "baseline_s": median(base_s),
                "nullsink_s": median(null_s),
                "traced_s": median(traced_s),
                # Paired per-round ratios: each round's legs ran under
                # the same machine conditions, so the median of the
                # pairwise overheads is robust to drift and outliers.
                "nullsink_overhead": median(
                    (n - b) / b for b, n in zip(base_s, null_s)
                ),
                "traced_overhead": median(
                    (t - b) / b for b, t in zip(base_s, traced_s)
                ),
            }
        )
    return results


def main(repeats: int = 7) -> None:
    results = measure(repeats)
    print_table(
        f"E16: observability overhead (full adversary runs, best of "
        f"{repeats})",
        [
            "workload",
            "baseline (ms)",
            "nullsink (ms)",
            "overhead",
            "traced (ms)",
            "overhead",
        ],
        [
            [
                row["workload"],
                f"{row['baseline_s'] * 1e3:.1f}",
                f"{row['nullsink_s'] * 1e3:.1f}",
                f"{row['nullsink_overhead']:+.1%}",
                f"{row['traced_s'] * 1e3:.1f}",
                f"{row['traced_overhead']:+.1%}",
            ]
            for row in results
        ],
        note="baseline = NullRegistry no-ops (unobserved); nullsink = the "
        f"default observation, asserted < {MAX_NULLSINK_OVERHEAD:.0%}; "
        "traced = JSONL journal with per-record flush (informational).",
    )
    RESULT_FILE.write_text(
        json.dumps(
            {
                "bench": "obs-overhead",
                "repeats": repeats,
                "max_nullsink_overhead": MAX_NULLSINK_OVERHEAD,
                "results": results,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
    print(f"results written to {RESULT_FILE}")
    worst = max(row["nullsink_overhead"] for row in results)
    assert worst < MAX_NULLSINK_OVERHEAD, (
        f"NullSink observation overhead {worst:.1%} exceeds "
        f"{MAX_NULLSINK_OVERHEAD:.0%}"
    )


def test_nullsink_overhead_under_bound():
    """The satellite gate: default observation stays under 5%."""
    results = measure(repeats=7)
    worst = max(row["nullsink_overhead"] for row in results)
    assert worst < MAX_NULLSINK_OVERHEAD, results


def test_adversary_run_nullsink(benchmark):
    benchmark(adversary_run, WORKLOADS[0][1])


def test_adversary_run_unobserved(benchmark):
    def run():
        with unobserved():
            adversary_run(WORKLOADS[0][1])

    benchmark(run)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
