"""Ablation -- process-symmetry reduction for anonymous protocols.

The paper highlights the anonymous setting (Zhu15/Gel15 resolved it
first); anonymous protocols are permutation-symmetric, and DESIGN.md
commits to quantifying what quotienting by that symmetry buys the
explorer.  Measured: full reachable-graph sizes of the (anonymous) CAS
consensus protocol with and without :class:`SymmetricKey`, and the
valency oracle's exploration work on a subset-classification sweep.

Standalone:  python benchmarks/bench_ablation_symmetry.py
Benchmark:   pytest benchmarks/bench_ablation_symmetry.py --benchmark-only
"""

import itertools

from repro.analysis.explorer import Explorer
from repro.analysis.report import print_table
from repro.analysis.symmetry import SymmetricKey
from repro.core.valency import ValencyOracle
from repro.model.system import System
from repro.protocols.consensus import CasConsensus


def reachable_size(n: int, symmetric: bool) -> int:
    protocol = SymmetricKey(CasConsensus(n)) if symmetric else CasConsensus(n)
    system = System(protocol)
    inputs = [i % 2 for i in range(n)]
    root = system.initial_configuration(inputs)
    return Explorer(system, max_configs=2_000_000).reachable_count(
        root, frozenset(range(n))
    )


def oracle_work(n: int, symmetric: bool) -> int:
    protocol = SymmetricKey(CasConsensus(n)) if symmetric else CasConsensus(n)
    system = System(protocol)
    oracle = ValencyOracle(system)
    config = system.initial_configuration([i % 2 for i in range(n)])
    for size in range(1, n + 1):
        for subset in itertools.combinations(range(n), size):
            oracle.decidable(config, frozenset(subset))
    return oracle.stats["explored_configs"]


def main() -> None:
    rows = []
    for n in (3, 4, 5, 6):
        plain = reachable_size(n, symmetric=False)
        reduced = reachable_size(n, symmetric=True)
        rows.append([n, plain, reduced, f"{plain / reduced:.1f}x"])
    print_table(
        "ablation D1: reachable graph, anonymous CAS consensus",
        ["n", "raw configs", "symmetry-reduced", "collapse"],
        rows,
        note="the quotient approaches the n!-fold collapse as contention "
        "symmetrises the state",
    )

    rows = []
    for n in (3, 4, 5):
        plain = oracle_work(n, symmetric=False)
        reduced = oracle_work(n, symmetric=True)
        rows.append([n, plain, reduced, f"{plain / max(1, reduced):.1f}x"])
    print_table(
        "ablation D2: oracle exploration on the full subset sweep",
        ["n", "configs explored (raw)", "(symmetry)", "saved"],
        rows,
        note="subset queries quotient only by permutations fixing P "
        "setwise (canonical_query_key), which is what keeps the "
        "reduction sound for refined valency",
    )


def test_symmetry_collapses_reachable(benchmark):
    reduced = benchmark(reachable_size, 4, True)
    assert reduced < reachable_size(4, False)


def test_symmetric_oracle_saves_exploration(benchmark):
    reduced = benchmark.pedantic(
        oracle_work, args=(4, True), rounds=1, iterations=1
    )
    assert reduced <= oracle_work(4, False)


if __name__ == "__main__":
    main()
