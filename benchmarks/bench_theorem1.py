"""E1 -- Theorem 1: the adversary pins n-1 registers (the headline claim).

Paper: every nondeterministic solo terminating binary consensus protocol
for n processes uses at least n-1 registers.  Measured: the executable
adversary, run against the n-register commit-adopt protocol, constructs
an execution with n-1 distinct registers covered/poised, for each n.

Standalone:  python benchmarks/bench_theorem1.py [max_n]
Benchmark:   pytest benchmarks/bench_theorem1.py --benchmark-only

The valency oracle's solo-probe fast path (positive queries answered by
plain solo runs) is what makes n = 6 feasible: the construction is
recursive over valency queries and nearly all of them are positive.
The incremental valency engine (process-state step memoisation plus
configuration interning, :mod:`repro.core.incremental`) is what brings
n = 7 into the default sweep.
"""

import sys

from repro.analysis.report import print_table
from repro.core.construction import ConstructionStats
from repro.core.theorem import space_lower_bound
from repro.model.system import System
from repro.protocols.consensus import CommitAdoptRounds, RacingCounters

#: Oracle budgets per n (bigger constructions need deeper witnesses).
BUDGETS = {
    2: (5_000, 30),
    3: (40_000, 80),
    4: (40_000, 80),
    5: (80_000, 100),
    6: (80_000, 100),
    7: (80_000, 100),
}


def run_adversary(n: int, family=CommitAdoptRounds, incremental: bool = True):
    system = System(family(n))
    configs, depth = BUDGETS.get(n, (80_000, 100))
    stats = ConstructionStats()
    certificate = space_lower_bound(
        system,
        strict=False,
        max_configs=configs,
        max_depth=depth,
        stats=stats,
        incremental=incremental,
    )
    certificate.validate(System(family(n)))
    return certificate, stats


def main(max_n: int = 7) -> None:
    rows = []
    for family, family_max in (
        (CommitAdoptRounds, max_n),
        (RacingCounters, min(4, max_n)),
    ):
        for n in range(2, family_max + 1):
            certificate, stats = run_adversary(n, family)
            rows.append(
                [
                    certificate.protocol_name,
                    n,
                    n - 1,
                    certificate.bound,
                    len(certificate.alpha)
                    + len(certificate.phi)
                    + len(certificate.zeta),
                    stats.lemma4_calls,
                    stats.lemma3_calls,
                    "validated",
                ]
            )
    print_table(
        "E1: Theorem 1 -- registers pinned by the adversary, two "
        "independent protocol families",
        [
            "protocol",
            "n",
            "bound n-1",
            "pinned",
            "adversary steps",
            "lemma4 calls",
            "lemma3 calls",
            "certificate",
        ],
        rows,
        note="certificates are replay-validated; pinned == n-1 throughout; "
        "the adversary is protocol-agnostic (rounds vs racing counters)",
    )


def test_theorem1_n3(benchmark):
    certificate, _ = benchmark(run_adversary, 3)
    assert certificate.bound == 2


def test_theorem1_n4(benchmark):
    certificate, _ = benchmark.pedantic(
        run_adversary, args=(4,), rounds=1, iterations=1
    )
    assert certificate.bound == 3


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
