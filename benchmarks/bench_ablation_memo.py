"""Ablation -- valency-oracle memoisation and the canonical abstraction.

DESIGN.md calls out two oracle-side design decisions: memoising valency
queries on (canonical key, process set), and the round-shift canonical
abstraction that collapses drift.  This bench quantifies both on the
construction's real workload:

* Lemma 4 on the 3-process round protocol with the cache on vs off
  (the construction re-asks the same (configuration, subset) questions
  while scanning execution prefixes);
* BFS node counts at fixed depth from a *mid-race* configuration, with
  and without the abstraction (rounds only drift once a race has run).

Standalone:  python benchmarks/bench_ablation_memo.py
Benchmark:   pytest benchmarks/bench_ablation_memo.py --benchmark-only
"""

import time
from collections import deque

from repro.analysis.report import print_table
from repro.core.construction import ConstructionStats, lemma4
from repro.core.valency import ValencyOracle
from repro.model.system import System
from repro.protocols.consensus import CommitAdoptRounds


def lemma4_work(memoize: bool, solo_probe: bool = True, n: int = 4):
    """Run Lemma 4 end to end; return (explored configs, queries, hits)."""
    system = System(CommitAdoptRounds(n))
    oracle = ValencyOracle(
        system,
        max_configs=30_000,
        max_depth=60,
        strict=False,
        memoize=memoize,
        solo_probe=solo_probe,
    )
    config = system.initial_configuration([0, 1, 0, 0][:n])
    lemma4(
        system,
        oracle,
        config,
        frozenset(range(n)),
        stats=ConstructionStats(),
    )
    return (
        oracle.stats["explored_configs"],
        oracle.stats["queries"],
        oracle.stats["cache_hits"],
    )


def raced_root(system, steps: int = 30):
    """A configuration with round drift: two racers, step by step."""
    config = system.initial_configuration(
        [0, 1] + [0] * (system.protocol.n - 2)
    )
    for index in range(steps):
        pid = index % 2
        if not system.enabled(config, pid):
            break
        config, _ = system.step(config, pid)
    return config


def bfs_nodes(depth: int, canonical: bool) -> int:
    protocol = CommitAdoptRounds(2)
    system = System(protocol)
    root = raced_root(system)
    key_fn = protocol.canonical_key if canonical else (lambda c: c)
    seen = {key_fn(root)}
    queue = deque([(root, 0)])
    while queue:
        config, level = queue.popleft()
        if level >= depth:
            continue
        for pid in range(protocol.n):
            if not system.enabled(config, pid):
                continue
            succ, _ = system.step(config, pid)
            key = key_fn(succ)
            if key not in seen:
                seen.add(key)
                queue.append((succ, level + 1))
    return len(seen)


def main() -> None:
    rows = []
    for solo_probe in (True, False):
        for memoize in (True, False):
            start = time.perf_counter()
            explored, queries, hits = lemma4_work(memoize, solo_probe)
            elapsed = time.perf_counter() - start
            rows.append(
                [
                    "on" if solo_probe else "off",
                    "on" if memoize else "off",
                    queries,
                    hits,
                    explored,
                    f"{elapsed * 1000:.0f}ms",
                ]
            )
    print_table(
        "ablation A: oracle fast paths during Lemma 4 (n=4 rounds protocol)",
        ["solo probe", "cache", "queries", "hits", "configs explored", "time"],
        rows,
        note="the solo probe answers the construction's (mostly positive) "
        "queries in one path; the cache covers the re-asked prefixes; "
        "together they are the n=4 -> n=6 frontier lever",
    )

    rows = []
    for depth in (16, 24, 32):
        raw = bfs_nodes(depth, canonical=False)
        shifted = bfs_nodes(depth, canonical=True)
        rows.append([depth, raw, shifted, f"{raw / shifted:.2f}x"])
    print_table(
        "ablation B: round-shift abstraction, BFS from a mid-race "
        "configuration (n=2)",
        ["depth", "raw configs", "canonical keys", "collapse"],
        rows,
        note="the abstraction is exact (a bisimulation) yet strictly "
        "coarser: the oracle explores the quotient",
    )


def test_memo_saves_work(benchmark):
    explored_memo, _, hits = benchmark(lemma4_work, True)
    explored_cold, _, _ = lemma4_work(False)
    assert hits > 0
    assert explored_memo <= explored_cold


def test_solo_probe_saves_exploration(benchmark):
    explored_probe, _, _ = benchmark.pedantic(
        lemma4_work, args=(True,), kwargs={"solo_probe": True},
        rounds=1, iterations=1,
    )
    explored_plain, _, _ = lemma4_work(True, solo_probe=False)
    assert explored_probe < explored_plain


def test_abstraction_collapses(benchmark):
    shifted = benchmark.pedantic(
        bfs_nodes, args=(24, True), rounds=1, iterations=1
    )
    raw = bfs_nodes(24, False)
    assert shifted < raw


if __name__ == "__main__":
    main()
