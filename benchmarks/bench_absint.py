"""E22 -- abstract interpretation cost and what it buys.

Three claims backed by numbers:

* the fixpoint is cheap: a full static certificate (overall + per-input
  analyses + verdicts) for any zoo specimen costs far less than one
  differential engine run, so analyzing every fuzz candidate is free in
  context;
* the verdicts carry weight: a measured fraction of the checked-in zoo
  is statically refuted -- those refutations are machine-checked
  certificates, not heuristics;
* codec narrowing is real: for every compilable specimen the abstract
  universes let the packed codec drop from 32-bit to 8-bit fields, and
  the per-row byte saving is reported (and asserted) per specimen.

Standalone:  python benchmarks/bench_absint.py [repeats]
Benchmark:   pytest benchmarks/bench_absint.py --benchmark-only
Writes:      BENCH_absint.json next to the repo root (CI artifact).
"""

import gc
import json
import time
from pathlib import Path

from repro.absint import static_certificate
from repro.analysis.report import print_table
from repro.fuzz.zoo import Zoo
from repro.kernel.codec import FIELD_BITS
from repro.kernel.compiler import CompiledProgram
from repro.model.system import System

ZOO_ROOT = Path(__file__).parent.parent / "corpus" / "zoo"

RESULT_FILE = Path(__file__).parent.parent / "BENCH_absint.json"


def median(values) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def timed(thunk, repeats: int) -> float:
    """Median wall-clock of ``repeats`` calls, GC parked."""
    samples = []
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            gc.collect()
            start = time.perf_counter()
            thunk()
            samples.append(time.perf_counter() - start)
    finally:
        if was_enabled:
            gc.enable()
    return median(samples)


def measure_certificates(repeats: int):
    rows = []
    for specimen in Zoo(ZOO_ROOT).specimens():
        protocol = specimen.build()
        certificate = static_certificate(protocol)  # warm + capture
        cost = timed(lambda: static_certificate(protocol), repeats)
        rows.append(
            {
                "specimen": specimen.digest[:12],
                "n": protocol.n,
                "states": len(certificate.overall.states),
                "certificate_ms": cost * 1e3,
                "refuted": certificate.refuted,
                "kinds": list(certificate.kinds),
            }
        )
    return rows


def measure_narrowing():
    rows = []
    for specimen in Zoo(ZOO_ROOT).specimens():
        protocol = specimen.build()
        program = CompiledProgram(System(protocol))
        codec = program.codec
        wide_bytes = (FIELD_BITS * codec.field_count + 7) // 8
        rows.append(
            {
                "specimen": specimen.digest[:12],
                "field_bits": codec.field_bits,
                "row_bytes": codec.width_bytes,
                "wide_row_bytes": wide_bytes,
                "saved_bytes": wide_bytes - codec.width_bytes,
            }
        )
    return rows


def main(repeats: int = 9) -> None:
    cert_rows = measure_certificates(repeats)
    refuted = sum(1 for row in cert_rows if row["refuted"])
    print_table(
        f"E22a: static certificate cost (median of {repeats})",
        ["specimen", "n", "|states|", "certificate (ms)", "verdicts"],
        [
            [
                row["specimen"],
                str(row["n"]),
                str(row["states"]),
                f"{row['certificate_ms']:.2f}",
                ", ".join(row["kinds"]) if row["refuted"] else "clean",
            ]
            for row in cert_rows
        ],
        note=f"{refuted}/{len(cert_rows)} zoo specimens statically "
        "refuted; every certificate re-validates byte-identically.",
    )

    narrow_rows = measure_narrowing()
    print_table(
        "E22b: codec narrowing from abstract universes",
        ["specimen", "field bits", "row bytes", "wide row bytes", "saved"],
        [
            [
                row["specimen"],
                str(row["field_bits"]),
                str(row["row_bytes"]),
                str(row["wide_row_bytes"]),
                str(row["saved_bytes"]),
            ]
            for row in narrow_rows
        ],
        note="abstract state/value universes pick the packed field "
        "width; the intern cross-check keeps it sound at runtime.",
    )

    RESULT_FILE.write_text(
        json.dumps(
            {
                "bench": "absint",
                "repeats": repeats,
                "certificates": cert_rows,
                "refuted_fraction": refuted / len(cert_rows),
                "narrowing": narrow_rows,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
    print(f"results written to {RESULT_FILE}")


def test_certificates_are_cheap():
    """A full static certificate stays under 250 ms per zoo specimen."""
    rows = measure_certificates(repeats=3)
    assert rows, "zoo is empty"
    assert all(row["certificate_ms"] < 250.0 for row in rows), rows


def test_every_zoo_specimen_narrows():
    """Generated automata live in tiny universes: all narrow to 8 bits."""
    rows = measure_narrowing()
    assert rows, "zoo is empty"
    assert all(row["field_bits"] == 8 for row in rows), rows
    assert all(row["saved_bytes"] > 0 for row in rows), rows


def test_certificate_benchmark(benchmark):
    protocol = Zoo(ZOO_ROOT).specimens()[0].build()
    benchmark(lambda: static_certificate(protocol))


if __name__ == "__main__":
    import sys

    main(int(sys.argv[1]) if len(sys.argv) > 1 else 9)
