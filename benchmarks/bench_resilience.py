"""E19 -- supervision overhead: the resilient plane must be near-free.

The supervised pool (:mod:`repro.resilience.supervisor`) replaces
``multiprocessing.Pool.map`` with per-task dispatch, liveness tracking
and retry bookkeeping.  All of that machinery only earns its place if
an *undisturbed* campaign -- no kills, no wedges, no retries -- pays
almost nothing for it.  Measured: wall-clock of complete sharded
Theorem 1 adversary runs

* ``bare``       -- ``WorkerPool(supervise=False)``: the raw
  ``multiprocessing.Pool`` plane (hangs forever if a worker dies);
* ``supervised`` -- the default ``WorkerPool``: per-task dispatch,
  heartbeat/deadline sweeps, retry accounting armed but idle.

A ``sequential`` (workers=1) column is informational context.  Both
pools are created and warmed outside the clocks, so what is measured is
dispatch overhead, not spawn cost.  Target (asserted): paired-median
supervised overhead over bare < 5% -- same discipline as E16
(``bench_obs``): legs interleave round-robin and compare within rounds,
so machine drift cancels.

Standalone:  python benchmarks/bench_resilience.py [repeats]
Benchmark:   pytest benchmarks/bench_resilience.py --benchmark-only
Writes:      BENCH_resilience.json next to the repo root (CI artifact).
"""

import gc
import json
import sys
import time
from pathlib import Path

from repro.analysis.report import print_table
from repro.faults import run_adversary_guarded
from repro.model.system import System
from repro.parallel import WorkerPool
from repro.protocols.consensus import CommitAdoptRounds

#: Overhead bound the suite asserts for the supervised plane.
MAX_SUPERVISION_OVERHEAD = 0.05

#: Workers for the sharded legs; 2 keeps the benchmark honest on any
#: CI box (more workers only dilute the per-dispatch cost under test).
WORKERS = 2

#: (name, protocol factory, runs per timed call).
WORKLOADS = [
    ("rounds:3", lambda: CommitAdoptRounds(3), 1),
]

RESULT_FILE = Path(__file__).parent.parent / "BENCH_resilience.json"


def adversary_run(make, pool=None, workers: int = 1) -> None:
    outcome = run_adversary_guarded(
        System(make()), workers=workers, pool=pool
    )
    assert outcome.status == "certificate", outcome.describe()


def timed_interleaved(legs, repeats: int = 5):
    """Per-leg samples, one per leg per round (see ``bench_obs``)."""
    samples = [[] for _ in legs]
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            for index, leg in enumerate(legs):
                gc.collect()
                start = time.perf_counter()
                leg()
                samples[index].append(time.perf_counter() - start)
    finally:
        if was_enabled:
            gc.enable()
    return samples


def median(values) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def measure(repeats: int = 5):
    """Per-workload timings for sequential, bare and supervised planes."""
    results = []
    for name, make, iters in WORKLOADS:
        with WorkerPool(WORKERS, supervise=False) as bare_pool, \
                WorkerPool(WORKERS) as supervised_pool:

            def sequential():
                for _ in range(iters):
                    adversary_run(make)

            def bare():
                for _ in range(iters):
                    adversary_run(make, pool=bare_pool, workers=WORKERS)

            def supervised():
                for _ in range(iters):
                    adversary_run(
                        make, pool=supervised_pool, workers=WORKERS
                    )

            # Warm every leg: workers spawn and import outside the
            # clocks, so the timed rounds measure dispatch only.
            sequential()
            bare()
            supervised()
            seq_s, bare_s, sup_s = timed_interleaved(
                [sequential, bare, supervised], repeats
            )
        results.append(
            {
                "workload": name,
                "iterations": iters,
                "workers": WORKERS,
                "sequential_s": median(seq_s),
                "bare_s": median(bare_s),
                "supervised_s": median(sup_s),
                # Paired per-round ratios (drift-robust, as in E16).
                "supervision_overhead": median(
                    (s - b) / b for b, s in zip(bare_s, sup_s)
                ),
            }
        )
    return results


def main(repeats: int = 5) -> None:
    results = measure(repeats)
    print_table(
        f"E19: supervision overhead (sharded adversary runs, median of "
        f"{repeats})",
        [
            "workload",
            "sequential (ms)",
            "bare pool (ms)",
            "supervised (ms)",
            "overhead",
        ],
        [
            [
                row["workload"],
                f"{row['sequential_s'] * 1e3:.1f}",
                f"{row['bare_s'] * 1e3:.1f}",
                f"{row['supervised_s'] * 1e3:.1f}",
                f"{row['supervision_overhead']:+.1%}",
            ]
            for row in results
        ],
        note="bare = multiprocessing.Pool dispatch (hangs on a dead "
        "worker); supervised = per-task dispatch with liveness/deadline "
        f"sweeps, asserted < {MAX_SUPERVISION_OVERHEAD:.0%} overhead; "
        "sequential is context.",
    )
    RESULT_FILE.write_text(
        json.dumps(
            {
                "bench": "supervision-overhead",
                "repeats": repeats,
                "workers": WORKERS,
                "max_supervision_overhead": MAX_SUPERVISION_OVERHEAD,
                "results": results,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
    print(f"results written to {RESULT_FILE}")
    worst = max(row["supervision_overhead"] for row in results)
    assert worst < MAX_SUPERVISION_OVERHEAD, (
        f"supervision overhead {worst:.1%} exceeds "
        f"{MAX_SUPERVISION_OVERHEAD:.0%}"
    )


def test_supervision_overhead_under_bound():
    """The satellite gate: the supervised plane stays under 5%."""
    results = measure(repeats=5)
    worst = max(row["supervision_overhead"] for row in results)
    assert worst < MAX_SUPERVISION_OVERHEAD, results


def test_sharded_adversary_supervised(benchmark):
    with WorkerPool(WORKERS) as pool:
        adversary_run(WORKLOADS[0][1], pool=pool, workers=WORKERS)  # warm
        benchmark(
            adversary_run, WORKLOADS[0][1], pool=pool, workers=WORKERS
        )


def test_sharded_adversary_bare(benchmark):
    with WorkerPool(WORKERS, supervise=False) as pool:
        adversary_run(WORKLOADS[0][1], pool=pool, workers=WORKERS)  # warm
        benchmark(
            adversary_run, WORKLOADS[0][1], pool=pool, workers=WORKERS
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 5)
