"""E21 -- compiled exploration kernel: speedup with identical certificates.

The compiled kernel (:mod:`repro.kernel`) lowers a protocol to flat
per-``(pid, state)`` effect tables over packed-integer configurations
and expands whole BFS frontiers per call; the interpreted explorer
walks ``Configuration`` objects.  Lowering is invisible to the search
by construction (``tests/test_kernel_differential.py``), so the *only*
observable difference must be wall-clock.  Measured, per workload:

* paired-median adversary wall-clock, interpreted (``kernel="interp"``)
  vs compiled, both with ``incremental=False`` so the comparison is
  engine vs engine, interleaved rounds so drift cancels;
* byte-equality of the serialized certificates (asserted before any
  timing is believed);
* the honest ratio against the *incremental interpreter* (the previous
  default fast path) -- the kernel composes with the engine, it does
  not replace it;
* the raw exploration ratio on one large flat BFS (the E18-style
  >= 10x record);
* the kernel's own counters (compiles, batch sizes, fallbacks) from an
  observed run.

Target (asserted): paired-median speedup >= 5x on the n=5 adversary.
Raw exploration runs >= 10x (recorded in the payload); the compiled
kernel also brings rounds:8 into the default sweep (~1 minute, vs
~13 minutes interpreted -- recorded compiled-only for that reason).

Standalone:  python benchmarks/bench_kernel.py [max_n]
Benchmark:   pytest benchmarks/bench_kernel.py --benchmark-only
Writes:      BENCH_kernel.json next to the repo root (CI artifact).
"""

import gc
import json
import sys
import time
from pathlib import Path

from repro.analysis.explorer import Explorer
from repro.analysis.report import print_table
from repro.core.serialize import to_json
from repro.core.theorem import space_lower_bound
from repro.model.system import System
from repro.obs import MetricsRegistry, observe
from repro.protocols.consensus import CommitAdoptRounds

#: Paired-median speedup the suite asserts on the n=5 adversary.
MIN_SPEEDUP_N5 = 5.0

#: Raw-exploration speedup recorded (and asserted loosely) at n=3.
MIN_RAW_SPEEDUP = 10.0

#: Oracle budgets per n (matches benchmarks/bench_incremental.py).
BUDGETS = {
    3: (40_000, 80),
    4: (40_000, 80),
    5: (80_000, 100),
    8: (80_000, 100),
}

#: Raw-exploration workload: one flat BFS over this many configurations.
RAW_N = 3
RAW_CONFIGS = 100_000

RESULT_FILE = Path(__file__).parent.parent / "BENCH_kernel.json"


def adversary(n: int, kernel: str, incremental: bool = False):
    configs, depth = BUDGETS.get(n, (80_000, 100))
    return space_lower_bound(
        System(CommitAdoptRounds(n)),
        strict=False,
        max_configs=configs,
        max_depth=depth,
        incremental=incremental,
        kernel=kernel,
    )


def certificates_identical(n: int) -> bool:
    """Byte-equality gate: timing a wrong answer is meaningless."""
    return to_json(adversary(n, "interp")) == to_json(adversary(n, "compiled"))


def paired_medians(n: int, repeats: int = 5):
    """Median interpreted and compiled wall-clock, interleaved rounds.

    Interleaving puts both legs under the same slow drift (CPU
    frequency, cache warmth); comparing medians of paired rounds is
    what the CI gate asserts, so one noisy round cannot flip it.
    """
    interp_samples, compiled_samples = [], []
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            for kernel, samples in (
                ("interp", interp_samples),
                ("compiled", compiled_samples),
            ):
                gc.collect()
                start = time.perf_counter()
                adversary(n, kernel)
                samples.append(time.perf_counter() - start)
    finally:
        if was_enabled:
            gc.enable()
    return median(interp_samples), median(compiled_samples)


def median(values) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def timed_adversary(n: int, kernel: str, incremental: bool = False) -> float:
    start = time.perf_counter()
    adversary(n, kernel, incremental=incremental)
    return time.perf_counter() - start


def raw_exploration(kernel: str, n: int = RAW_N, configs: int = RAW_CONFIGS):
    """One flat bounded BFS -- the kernel's headline workload."""
    system = System(CommitAdoptRounds(n))
    explorer = Explorer(
        system, max_configs=configs, strict=False, kernel=kernel
    )
    root = system.initial_configuration([0] + [1] * (n - 1))
    start = time.perf_counter()
    result = explorer.explore(root, tuple(range(n)))
    elapsed = time.perf_counter() - start
    explorer.close()
    return elapsed, result.visited


def kernel_counters(n: int):
    """Compile/batch/fallback counters of one observed compiled run."""
    registry = MetricsRegistry()
    with observe(metrics=registry):
        adversary(n, "compiled")
    counters = registry.snapshot()["counters"]
    histograms = registry.snapshot()["histograms"]
    batch = histograms.get("kernel.batch", {})
    return {
        "kernel.compiles": counters.get("kernel.compiles", 0),
        "kernel.fallbacks": counters.get("kernel.fallbacks", 0),
        "batch.count": batch.get("count", 0),
        "batch.sum": batch.get("sum", 0),
    }


def measure(max_n: int = 5, repeats: int = 5):
    rows, payload = [], {}
    # n >= 8 is sweep-only (see sweep_n8): pairing it would spend ~13
    # interpreted minutes per round proving what rounds:5 already gates.
    for n in range(3, min(max_n, 5) + 1):
        if n not in BUDGETS:
            continue
        assert certificates_identical(n), (
            f"compiled kernel changed the n={n} certificate"
        )
        interp_s, compiled_s = paired_medians(n, repeats)
        speedup = interp_s / compiled_s if compiled_s else float("inf")
        incr_s = timed_adversary(n, "interp", incremental=True)
        vs_incr = incr_s / compiled_s if compiled_s else float("inf")
        counters = kernel_counters(n)
        batches = counters["batch.count"]
        mean_batch = counters["batch.sum"] / batches if batches else 0.0
        rows.append(
            [
                f"rounds:{n}",
                f"{interp_s * 1e3:.0f}",
                f"{compiled_s * 1e3:.0f}",
                f"{speedup:.1f}x",
                f"{vs_incr:.1f}x",
                f"{mean_batch:.0f}",
                counters["kernel.fallbacks"],
                "identical",
            ]
        )
        payload[f"rounds:{n}"] = {
            "interp_s": interp_s,
            "compiled_s": compiled_s,
            "speedup": speedup,
            "interp_incremental_s": incr_s,
            "speedup_vs_incremental": vs_incr,
            "certificates_identical": True,
            **counters,
        }
    raw_interp_s, visited = raw_exploration("interp")
    raw_compiled_s, visited_c = raw_exploration("compiled")
    assert visited == visited_c, (visited, visited_c)
    payload["raw_exploration"] = {
        "workload": f"rounds:{RAW_N} flat BFS, {visited} configurations",
        "interp_s": raw_interp_s,
        "compiled_s": raw_compiled_s,
        "speedup": (
            raw_interp_s / raw_compiled_s if raw_compiled_s else float("inf")
        ),
    }
    return rows, payload


def sweep_n8(payload) -> list:
    """rounds:8 joins the default sweep compiled-only (the interpreted
    leg would take ~13 minutes; the whole point of the row is that the
    kernel makes the workload routine)."""
    elapsed = timed_adversary(8, "compiled")
    payload["rounds:8"] = {"compiled_s": elapsed, "interp_s": None}
    return [
        "rounds:8", "(skipped)", f"{elapsed * 1e3:.0f}", "-", "-", "-",
        0, "compiled-only",
    ]


def main(max_n: int = 5, repeats: int = 5) -> None:
    rows, payload = measure(max_n, repeats)
    if max_n >= 8:
        rows.append(sweep_n8(payload))
    raw = payload["raw_exploration"]
    print_table(
        f"E21: compiled exploration kernel (paired medians of {repeats} "
        "interleaved rounds; both adversary legs incremental=False)",
        [
            "workload",
            "interp (ms)",
            "compiled (ms)",
            "speedup",
            "vs incr.",
            "mean batch",
            "fallbacks",
            "certificate",
        ],
        rows,
        note="certificates byte-identical before timing is believed; CI "
        f"asserts >= {MIN_SPEEDUP_N5:.0f}x at n=5; raw flat BFS "
        f"({raw['workload']}) ran {raw['speedup']:.1f}x "
        "(see EXPERIMENTS.md E21).",
    )
    RESULT_FILE.write_text(json.dumps(payload, indent=2, sort_keys=True))
    print(f"wrote {RESULT_FILE.name}")


def test_certificates_identical_n3():
    assert certificates_identical(3)


def test_kernel_speedup_n5():
    """CI gate: paired-median speedup >= 5x with identical certificates."""
    assert certificates_identical(5)
    interp_s, compiled_s = paired_medians(5, repeats=3)
    assert interp_s / compiled_s >= MIN_SPEEDUP_N5, (interp_s, compiled_s)


def test_raw_exploration_speedup():
    """The flat-BFS record: >= 10x on one large exploration."""
    interp_s, visited = raw_exploration("interp")
    compiled_s, visited_c = raw_exploration("compiled")
    assert visited == visited_c
    assert interp_s / compiled_s >= MIN_RAW_SPEEDUP, (interp_s, compiled_s)


def test_adversary_benchmark(benchmark):
    certificate = benchmark(adversary, 3, "compiled")
    assert certificate.bound == 2


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 5)
