"""E17 -- static analysis cost and POR edge reduction.

Two claims backed by numbers:

* ``repro lint`` is cheap: full static analysis of a bundled protocol
  (CFG construction, reachability, register footprints, Theorem 1
  contrapositive) costs well under the budget of a single exploration
  step, so linting before every adversary run is free in context.
* the commuting-diamond partial-order reduction (``--por``) skips a
  material fraction of explorer edges while visiting the *identical*
  configuration set -- asserted here on every workload, not assumed.

Standalone:  python benchmarks/bench_lint.py [repeats]
Benchmark:   pytest benchmarks/bench_lint.py --benchmark-only
Writes:      BENCH_lint.json next to the repo root (CI artifact).
"""

import gc
import json
import time
from pathlib import Path

from repro.analysis.explorer import Explorer
from repro.analysis.report import print_table
from repro.lint import lint_protocol
from repro.model.system import System
from repro.obs import MetricsRegistry, observe
from repro.protocols.consensus import (
    CommitAdoptRounds,
    SplitBrainConsensus,
    TasConsensus,
)

#: (name, protocol factory) for the lint-cost table.
LINT_WORKLOADS = [
    ("rounds:3", lambda: CommitAdoptRounds(3)),
    ("tas:2", lambda: TasConsensus(2)),
    ("split-brain:4", lambda: SplitBrainConsensus(4)),
]

#: (name, protocol factory, explorer kwargs) for the POR table.  The
#: rounds:3 graph is bounded by depth so the full/pruned pair stays in
#: benchmark territory; rounds:2 and tas:2 explore exhaustively.
POR_WORKLOADS = [
    ("rounds:2", lambda: CommitAdoptRounds(2), {}),
    ("tas:2", lambda: TasConsensus(2), {}),
    (
        "rounds:3 (depth 14)",
        lambda: CommitAdoptRounds(3),
        {"max_depth": 14, "strict": False},
    ),
]

RESULT_FILE = Path(__file__).parent.parent / "BENCH_lint.json"


def median(values) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def timed(thunk, repeats: int) -> float:
    """Median wall-clock of ``repeats`` calls, GC parked."""
    samples = []
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            gc.collect()
            start = time.perf_counter()
            thunk()
            samples.append(time.perf_counter() - start)
    finally:
        if was_enabled:
            gc.enable()
    return median(samples)


def measure_lint(repeats: int):
    rows = []
    for name, make in LINT_WORKLOADS:
        protocol = make()
        report = lint_protocol(protocol)  # warm + capture diagnostics
        cost = timed(lambda: lint_protocol(protocol), repeats)
        rows.append(
            {
                "protocol": name,
                "lint_ms": cost * 1e3,
                "diagnostics": len(report),
                "blocking": report.blocking,
            }
        )
    return rows


def _explore(make, por: bool, **kwargs):
    """One full exploration; returns (visited, edges, pruned, seconds)."""
    system = System(make())
    inputs = [pid % 2 for pid in range(system.protocol.n)]
    root = system.initial_configuration(inputs)
    pids = frozenset(range(system.protocol.n))
    registry = MetricsRegistry()
    start = time.perf_counter()
    with observe(metrics=registry):
        result = Explorer(system, por=por, **kwargs).explore(root, pids)
    elapsed = time.perf_counter() - start
    counters = registry.snapshot()["counters"]
    return (
        result.visited,
        counters.get("explorer.edges", 0),
        counters.get("explorer.por_pruned", 0),
        elapsed,
    )


def measure_por():
    rows = []
    for name, make, kwargs in POR_WORKLOADS:
        base_visited, base_edges, base_pruned, base_s = _explore(
            make, por=False, **kwargs
        )
        por_visited, por_edges, por_pruned, por_s = _explore(
            make, por=True, **kwargs
        )
        # The reduction's whole contract: identical results, less work.
        assert por_visited == base_visited, (name, base_visited, por_visited)
        assert base_pruned == 0
        assert por_edges + por_pruned == base_edges, (
            name, base_edges, por_edges, por_pruned,
        )
        rows.append(
            {
                "workload": name,
                "visited": base_visited,
                "base_edges": base_edges,
                "por_edges": por_edges,
                "pruned": por_pruned,
                "edge_reduction": por_pruned / base_edges if base_edges else 0.0,
                "base_ms": base_s * 1e3,
                "por_ms": por_s * 1e3,
            }
        )
    return rows


def main(repeats: int = 9) -> None:
    lint_rows = measure_lint(repeats)
    print_table(
        f"E17a: static analysis cost (median of {repeats})",
        ["protocol", "lint (ms)", "diagnostics", "blocking"],
        [
            [
                row["protocol"],
                f"{row['lint_ms']:.2f}",
                str(row["diagnostics"]),
                "yes" if row["blocking"] else "no",
            ]
            for row in lint_rows
        ],
        note="full static pass: CFG + reachability + footprints + "
        "Theorem 1 contrapositive.",
    )

    por_rows = measure_por()
    print_table(
        "E17b: POR edge reduction (visited configurations identical)",
        ["workload", "visited", "edges", "edges (POR)", "pruned", "saved"],
        [
            [
                row["workload"],
                str(row["visited"]),
                str(row["base_edges"]),
                str(row["por_edges"]),
                str(row["pruned"]),
                f"{row['edge_reduction']:.0%}",
            ]
            for row in por_rows
        ],
        note="asserted per row: visited sets identical and "
        "edges(POR) + pruned == edges(base).",
    )

    RESULT_FILE.write_text(
        json.dumps(
            {
                "bench": "lint-and-por",
                "repeats": repeats,
                "lint": lint_rows,
                "por": por_rows,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
    print(f"results written to {RESULT_FILE}")


def test_por_reduces_edges_without_changing_results():
    """The satellite gate: pruning is real and results are identical."""
    rows = measure_por()
    assert all(row["pruned"] > 0 for row in rows), rows


def test_lint_cost_is_bounded():
    """Linting any bundled protocol stays under 250 ms."""
    rows = measure_lint(repeats=3)
    assert all(row["lint_ms"] < 250.0 for row in rows), rows


def test_lint_protocol_benchmark(benchmark):
    protocol = CommitAdoptRounds(3)
    benchmark(lambda: lint_protocol(protocol))


if __name__ == "__main__":
    import sys

    main(int(sys.argv[1]) if len(sys.argv) > 1 else 9)
