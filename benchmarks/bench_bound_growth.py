"""E5 -- the bound landscape: Omega(sqrt n) (FHS98) vs n-1 (this paper).

Paper (Section 1): the 1992 bound was Omega(sqrt n); the gap to the
n-register upper bound stood for two decades; this paper closes it at
n-1.  Measured: the certificate bound our adversary extracts per n,
charted against ceil(sqrt(n)) (FHS98's curve), n-1 (Zhu) and n (the
upper bound / conjecture).

Standalone:  python benchmarks/bench_bound_growth.py [max_adversary_n]
Benchmark:   pytest benchmarks/bench_bound_growth.py --benchmark-only
"""

import math
import sys

from repro.analysis.report import print_table

try:
    from benchmarks.bench_theorem1 import run_adversary
except ImportError:  # standalone: python benchmarks/bench_bound_growth.py
    from bench_theorem1 import run_adversary


def main(max_adversary_n: int = 4) -> None:
    rows = []
    for n in (2, 3, 4, 5, 8, 16, 32, 64):
        if n <= max_adversary_n:
            certificate, _ = run_adversary(n)
            measured = str(certificate.bound)
        else:
            measured = "(= n-1, proved; adversary run for small n)"
        rows.append(
            [n, math.ceil(math.sqrt(n)), n - 1, n, measured]
        )
    print_table(
        "E5: consensus space bounds by year of technique",
        [
            "n",
            "FHS98 Omega(sqrt n)",
            "Zhu16 n-1",
            "upper bound n",
            "adversary-measured",
        ],
        rows,
        note="the 2016 bound is within 1 of the upper bound for every n; "
        "sqrt(n) falls behind already at n=4",
    )


def test_bound_growth_small(benchmark):
    def measure():
        return [run_adversary(n)[0].bound for n in (2, 3)]

    bounds = benchmark(measure)
    assert bounds == [1, 2]


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
