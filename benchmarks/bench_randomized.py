"""E12 (extension) -- randomization buys termination, never registers.

Paper (Sec. 1): deterministic wait-free consensus is impossible [LAA87 /
FLP85], but randomized consensus exists -- and Theorem 1 charges both
the same n-1 registers.  Measured: under the strict-alternation
adversary (the classic FLP schedule), the deterministic round protocol
races forever, while the local-coin protocol decides as soon as the
coins agree -- a geometric number of rounds.  Same register count.

Standalone:  python benchmarks/bench_randomized.py
Benchmark:   pytest benchmarks/bench_randomized.py --benchmark-only
"""

import random
import statistics

from repro.analysis.report import print_table
from repro.model.system import System, tape_from_bits
from repro.protocols.consensus import CommitAdoptRounds, RandomizedRounds


def steps_until_decision(system, n: int, cap: int):
    """Strict alternation of all n processes; steps until someone decides."""
    config = system.initial_configuration([i % 2 for i in range(n)])
    for index in range(cap):
        pid = index % n
        if not system.enabled(config, pid):
            return index
        config, _ = system.step(config, pid)
        if system.decided_values(config):
            return index + 1
    return None  # survived the whole adversarial schedule undecided


def randomized_trials(n: int, trials: int, cap: int, seed: int = 0):
    rng = random.Random(seed)
    results = []
    for _ in range(trials):
        tapes = [[rng.randint(0, 1) for _ in range(64)] for _ in range(n)]
        system = System(RandomizedRounds(n), tape=tape_from_bits(tapes))
        results.append(steps_until_decision(system, n, cap))
    return results


def main() -> None:
    cap = 20_000
    rows = []
    for n in (2, 3, 4):
        deterministic = steps_until_decision(
            System(CommitAdoptRounds(n)), n, cap
        )
        randomized = randomized_trials(n, trials=40, cap=cap, seed=n)
        decided = [r for r in randomized if r is not None]
        rows.append(
            [
                n,
                "undecided" if deterministic is None else deterministic,
                f"{len(decided)}/40",
                int(statistics.median(decided)) if decided else "-",
                max(decided) if decided else "-",
            ]
        )
    print_table(
        f"E12: strict-alternation adversary, {cap}-step cap",
        [
            "n",
            "deterministic: steps to decide",
            "randomized: decided",
            "median steps",
            "max steps",
        ],
        rows,
        note="the FLP schedule starves the deterministic protocol forever; "
        "local coins escape in a geometric number of rounds -- with the "
        "same n registers (Theorem 1 applies to both)",
    )


def test_deterministic_starves(benchmark):
    result = benchmark.pedantic(
        steps_until_decision,
        args=(System(CommitAdoptRounds(2)), 2, 5_000),
        rounds=1,
        iterations=1,
    )
    assert result is None


def test_randomized_escapes(benchmark):
    results = benchmark.pedantic(
        randomized_trials, args=(2, 10, 20_000, 1), rounds=1, iterations=1
    )
    assert any(r is not None for r in results)


if __name__ == "__main__":
    main()
