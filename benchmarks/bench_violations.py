"""E3 -- the contrapositive: fewer than n-1 registers => not consensus.

Paper: Theorem 1 implies no correct protocol for n processes exists on
fewer than n-1 registers.  Measured: plausible-looking protocols built
on k < n-1 registers; the model checker exhibits a concrete agreement
violation for each, with the witness schedule length reported.

Standalone:  python benchmarks/bench_violations.py
Benchmark:   pytest benchmarks/bench_violations.py --benchmark-only
"""

from repro.analysis.checker import (
    check_consensus_exhaustive,
    check_consensus_random,
)
from repro.analysis.report import print_table
from repro.analysis.shrink import agreement_violated, shrink_witness
from repro.model.system import System
from repro.protocols.consensus import (
    OptimisticOneRegister,
    SplitBrainConsensus,
    shared_register_rounds,
)


def find_violation(protocol):
    """BFS for shallow violations, randomized search for deep ones; the
    witness is then ddmin-shrunk to a locally minimal schedule."""
    system = System(protocol)
    inputs = [0] + [1] * (protocol.n - 1)
    result = check_consensus_exhaustive(
        system, inputs, max_configs=150_000, strict=False
    )
    if result.ok:
        result = check_consensus_random(
            system, inputs, runs=400, schedule_length=300, seed=2016
        )
    assert not result.ok, f"{protocol.name} unexpectedly looks correct"
    violation = result.first_violation()
    shrunk = shrink_witness(
        system, inputs, violation.schedule, agreement_violated(system)
    )
    # Witness replays: the final configuration really disagrees.
    config = system.initial_configuration(inputs)
    config, _ = system.run(config, shrunk, skip_halted=True)
    assert len(system.decided_values(config)) > 1
    return violation, shrunk


def cases():
    return [
        SplitBrainConsensus(2),
        OptimisticOneRegister(2),
        SplitBrainConsensus(3),
        shared_register_rounds(3, 1),
        shared_register_rounds(4, 2),
        shared_register_rounds(5, 3),
    ]


def main() -> None:
    rows = []
    for protocol in cases():
        violation, shrunk = find_violation(protocol)
        rows.append(
            [
                protocol.name,
                protocol.n,
                protocol.num_objects,
                protocol.n - 1,
                violation.kind,
                len(violation.schedule),
                len(shrunk),
            ]
        )
    print_table(
        "E3: protocols below the n-1 register bound break",
        [
            "protocol",
            "n",
            "registers",
            "needed (n-1)",
            "violation",
            "witness steps",
            "shrunk",
        ],
        rows,
        note="every witness replays to >= 2 distinct decided values; the "
        "shrunk column is the ddmin-minimised schedule length",
    )


def test_violation_split_brain(benchmark):
    violation, shrunk = benchmark(find_violation, SplitBrainConsensus(2))
    assert violation.kind == "agreement"
    assert len(shrunk) <= len(violation.schedule)


def test_violation_shared_rounds(benchmark):
    violation, shrunk = benchmark.pedantic(
        find_violation, args=(shared_register_rounds(4, 2),), rounds=1,
        iterations=1,
    )
    assert violation.kind == "agreement"
    assert len(shrunk) >= 4


if __name__ == "__main__":
    main()
